#ifndef KBQA_UTIL_TIMER_H_
#define KBQA_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "obs/metrics.h"

namespace kbqa {

/// Monotonic wall-clock stopwatch for coarse pipeline timing (offline
/// training phases, per-question latency in effectiveness benches).
/// Fine-grained latency numbers use google-benchmark instead.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(ElapsedSeconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII phase timer: reports the scope's elapsed nanoseconds into a
/// registry histogram on destruction, optionally printing a "[label]
/// 12.3s" line as well. The coarse (steady_clock, multi-millisecond)
/// sibling of KBQA_TRACE_SPAN — use it for offline phases and bench
/// setup, where a name lookup per scope is noise.
class ScopedTimer {
 public:
  /// Reports into Global()'s histogram `histogram_name`.
  explicit ScopedTimer(const char* histogram_name,
                       const char* print_label = nullptr)
      : histogram_(obs::MetricsRegistry::Global().GetHistogram(
            histogram_name)),
        label_(print_label) {}
  /// Reports into an explicit histogram (tests with private registries).
  explicit ScopedTimer(obs::Histogram* histogram,
                       const char* print_label = nullptr)
      : histogram_(histogram), label_(print_label) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

  ~ScopedTimer() {
    const double seconds = timer_.ElapsedSeconds();
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<uint64_t>(seconds * 1e9));
    }
    if (label_ != nullptr) std::printf("[%s] %.2fs\n", label_, seconds);
  }

 private:
  Timer timer_;
  obs::Histogram* histogram_;
  const char* label_;
};

}  // namespace kbqa

#endif  // KBQA_UTIL_TIMER_H_
