#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "eval/experiment.h"
#include "eval/runner.h"

namespace kbqa::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << "experiment build failed: " << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

// ---------- Synonym lexicon (bootstrapping) ----------

TEST_F(BaselinesTest, LexiconLearnsPredicatePhrases) {
  const SynonymLexicon& lexicon = experiment().lexicon();
  EXPECT_GT(lexicon.num_patterns(), 20u);
  EXPECT_GT(lexicon.num_predicates(), 5u);
  // The canonical BOA pattern: "the population of <city> is <value>" puts
  // "is" between; "<value> is the population of <city>" puts "is the
  // population of" between.
  auto entry = lexicon.Lookup("is the population of");
  ASSERT_TRUE(entry.has_value());
  const auto& path =
      experiment().kbqa().expanded_kb().paths().GetPath(entry->path);
  EXPECT_EQ(experiment().world().kb.PredicateString(path.front()),
            "population");
}

TEST_F(BaselinesTest, LexiconUnknownPhrase) {
  EXPECT_FALSE(experiment().lexicon().Lookup("zzz unknown zzz").has_value());
}

// ---------- Rule QA ----------

TEST_F(BaselinesTest, RuleQaAnswersCanonicalFrame) {
  core::AnswerResult result =
      experiment().rule_qa().Answer("what is the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "390000");
}

TEST_F(BaselinesTest, RuleQaFailsNonCanonicalPhrasing) {
  EXPECT_FALSE(experiment()
                   .rule_qa()
                   .Answer("how many people are there in honolulu")
                   .answered);
  EXPECT_FALSE(
      experiment().rule_qa().Answer("who is the wife of barack obama")
          .answered);  // "wife" names no predicate
}

// ---------- Keyword QA ----------

TEST_F(BaselinesTest, KeywordQaAnswersWhenWordingMatchesPredicate) {
  core::AnswerResult result =
      experiment().keyword_qa().Answer("tell me the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "390000");
}

TEST_F(BaselinesTest, KeywordQaFailsHolisticPhrasing) {
  // The paper's a©: no keyword matches "population".
  EXPECT_FALSE(experiment()
                   .keyword_qa()
                   .Answer("how many people are there in honolulu")
                   .answered);
}

TEST_F(BaselinesTest, KeywordQaHandlesSuperlatives) {
  core::AnswerResult result = experiment().keyword_qa().Answer(
      "which city has the largest population");
  ASSERT_TRUE(result.answered);
  // The generated gold for the same question agrees (checked via the
  // benchmark path in eval tests); here: a non-empty entity name.
  EXPECT_FALSE(result.value.empty());
}

// ---------- Synonym QA ----------

TEST_F(BaselinesTest, SynonymQaAnswersLexiconPhrasing) {
  core::AnswerResult result =
      experiment().synonym_qa().Answer("what is the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "390000");
}

TEST_F(BaselinesTest, SynonymQaFailsHolisticPhrasing) {
  // DEANNA's documented failure on a© — no contiguous synonym phrase.
  EXPECT_FALSE(experiment()
                   .synonym_qa()
                   .Answer("how many people are there in honolulu")
                   .answered);
}

// ---------- Graph QA ----------

TEST_F(BaselinesTest, GraphQaAnswersKeywordBackedQuestion) {
  core::AnswerResult result =
      experiment().graph_qa().Answer("what is the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "390000");
}

TEST_F(BaselinesTest, GraphQaDeclinesWithoutEvidence) {
  EXPECT_FALSE(experiment().graph_qa().Answer("hello world").answered);
}

// ---------- Comparative shape (who wins) ----------

TEST_F(BaselinesTest, KbqaRecallBeatsAllBaselinesOnBfqs) {
  corpus::BenchmarkConfig config;
  config.num_questions = 80;
  config.bfq_ratio = 1.0;
  config.seed = 777;
  // Compare representation coverage on phrasings that occurred in training
  // data; fully unseen phrasings are measured separately in the
  // integration suite (UnseenParaphrasesReduceButDontKillRecall).
  config.unseen_paraphrase_rate = 0.1;
  corpus::BenchmarkSet bfqs =
      corpus::GenerateBenchmark(experiment().world(), config);

  eval::RunResult kbqa = eval::RunBenchmark(experiment().kbqa(), bfqs);
  for (const core::QaSystemInterface* baseline : experiment().Baselines()) {
    eval::RunResult run = eval::RunBenchmark(*baseline, bfqs);
    EXPECT_GE(kbqa.counts.R(), run.counts.R())
        << "KBQA should recall at least as much as " << baseline->name();
  }
}

}  // namespace
}  // namespace kbqa::baselines
