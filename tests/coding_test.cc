// Round-trip and corrupt-input coverage for util/coding.h: varints,
// delta runs, bit packing, front coding, and the FNV block checksum.

#include "util/coding.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace kbqa::util {
namespace {

const uint8_t* Begin(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}
const uint8_t* End(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data()) + s.size();
}

// ---------------------------------------------------------------- varint --

TEST(Varint, RoundTripBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ULL << 32) - 1,
                            1ULL << 32,
                            (1ULL << 32) + 1,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_LE(buf.size(), 10u);
    uint64_t decoded = 0;
    const uint8_t* p = GetVarint64(Begin(buf), End(buf), &decoded);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(p, End(buf)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(Varint, RoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes: raw 64-bit and small values both exercised.
    const uint64_t v =
        (i % 2 == 0) ? rng.Next() : rng.Uniform(1ULL << (1 + i % 40));
    std::string buf;
    PutVarint64(&buf, v);
    uint64_t decoded = 0;
    const uint8_t* p = GetVarint64(Begin(buf), End(buf), &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, v);
  }
}

TEST(Varint, ConcatenatedStreamAdvancesCorrectly) {
  std::string buf;
  for (uint32_t v = 0; v < 1000; ++v) PutVarint32(&buf, v * 977);
  const uint8_t* p = Begin(buf);
  for (uint32_t v = 0; v < 1000; ++v) {
    uint32_t decoded = 0;
    p = GetVarint32(p, End(buf), &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, v * 977);
  }
  EXPECT_EQ(p, End(buf));
}

TEST(Varint, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  for (size_t keep = 0; keep < buf.size(); ++keep) {
    uint64_t v = 0;
    EXPECT_EQ(GetVarint64(Begin(buf), Begin(buf) + keep, &v), nullptr)
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST(Varint, OverlongEncodingFails) {
  // Eleven continuation bytes: more than 64 bits of payload.
  std::string buf(11, static_cast<char>(0x80));
  buf.push_back(0x01);
  uint64_t v = 0;
  EXPECT_EQ(GetVarint64(Begin(buf), End(buf), &v), nullptr);
}

TEST(Varint, TenthByteOverflowFails) {
  // 9 continuation bytes then a final byte with bits above the 64th.
  std::string buf(9, static_cast<char>(0x80));
  buf.push_back(0x02);  // bit 65
  uint64_t v = 0;
  EXPECT_EQ(GetVarint64(Begin(buf), End(buf), &v), nullptr);
}

TEST(Varint, Get32RejectsValuesAbove32Bits) {
  std::string buf;
  PutVarint64(&buf, (1ULL << 32));
  uint32_t v = 0;
  EXPECT_EQ(GetVarint32(Begin(buf), End(buf), &v), nullptr);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint32_t>::max());
  EXPECT_NE(GetVarint32(Begin(buf), End(buf), &v), nullptr);
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
}

// ---------------------------------------------------------------- zigzag --

TEST(ZigZag, RoundTripBoundaries) {
  const int64_t cases[] = {0,
                           -1,
                           1,
                           -2,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  // Small magnitudes must map to small codes (short varints).
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
}

// ------------------------------------------------------------- fixed64 --

TEST(Fixed64, RoundTripAndTruncation) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  ASSERT_EQ(buf.size(), 8u);
  uint64_t v = 0;
  const uint8_t* p = GetFixed64(Begin(buf), End(buf), &v);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(v, 0x0123456789abcdefULL);
  EXPECT_EQ(GetFixed64(Begin(buf), End(buf) - 1, &v), nullptr);
}

// ------------------------------------------------------------ delta runs --

std::vector<uint32_t> RoundTrip32(const std::vector<uint32_t>& in) {
  std::string buf;
  AppendDeltaRun32(&buf, in.data(), in.size());
  std::vector<uint32_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_TRUE(DecodeDeltaRun32(&p, End(buf), &out));
  EXPECT_EQ(p, End(buf));
  return out;
}

TEST(DeltaRun32, RoundTripShapes) {
  EXPECT_EQ(RoundTrip32({}), (std::vector<uint32_t>{}));
  EXPECT_EQ(RoundTrip32({0}), (std::vector<uint32_t>{0}));
  EXPECT_EQ(RoundTrip32({42}), (std::vector<uint32_t>{42}));
  const uint32_t kMax = std::numeric_limits<uint32_t>::max();
  EXPECT_EQ(RoundTrip32({0, kMax}), (std::vector<uint32_t>{0, kMax}));
  EXPECT_EQ(RoundTrip32({kMax, kMax}), (std::vector<uint32_t>{kMax, kMax}));
  EXPECT_EQ(RoundTrip32({5, 5, 5, 9}), (std::vector<uint32_t>{5, 5, 5, 9}));
}

TEST(DeltaRun32, RoundTripRandomSorted) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> values;
    const size_t n = rng.Uniform(300);
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v += rng.Uniform(1 << 16);
      if (v > std::numeric_limits<uint32_t>::max()) break;
      values.push_back(static_cast<uint32_t>(v));
    }
    EXPECT_EQ(RoundTrip32(values), values);
  }
}

TEST(DeltaRun32, CountBeyondBufferFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);  // claims 2^40 values, has none
  std::vector<uint32_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeDeltaRun32(&p, End(buf), &out));
}

TEST(DeltaRun32, TruncatedPayloadFails) {
  std::string buf;
  const std::vector<uint32_t> values = {10, 20, 300000, 300001};
  AppendDeltaRun32(&buf, values.data(), values.size());
  for (size_t keep = 1; keep < buf.size(); ++keep) {
    std::vector<uint32_t> out;
    const uint8_t* p = Begin(buf);
    EXPECT_FALSE(DecodeDeltaRun32(&p, Begin(buf) + keep, &out))
        << "prefix " << keep;
  }
}

TEST(DeltaRun32, SumOverflowFails) {
  // Two max deltas sum past UINT32_MAX — decoder must flag, not wrap.
  std::string buf;
  PutVarint64(&buf, 2);
  PutVarint32(&buf, std::numeric_limits<uint32_t>::max());
  PutVarint32(&buf, 1);
  std::vector<uint32_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeDeltaRun32(&p, End(buf), &out));
}

TEST(DeltaRun64, RoundTripBoundaries) {
  const std::vector<uint64_t> values = {0, 0, 1, (1ULL << 32) - 1,
                                        1ULL << 32, (1ULL << 32) + 7,
                                        std::numeric_limits<uint64_t>::max()};
  std::string buf;
  AppendDeltaRun64(&buf, values.data(), values.size());
  std::vector<uint64_t> out;
  const uint8_t* p = Begin(buf);
  ASSERT_TRUE(DecodeDeltaRun64(&p, End(buf), &out));
  EXPECT_EQ(out, values);
}

TEST(DeltaRun64, WrapAroundFails) {
  std::string buf;
  PutVarint64(&buf, 2);
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  PutVarint64(&buf, 2);  // would wrap past 2^64
  std::vector<uint64_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeDeltaRun64(&p, End(buf), &out));
}

// ------------------------------------------------------------ bit packing --

TEST(BitPack, WidthComputation) {
  EXPECT_EQ(BitWidth32(0), 0);
  EXPECT_EQ(BitWidth32(1), 1);
  EXPECT_EQ(BitWidth32(2), 2);
  EXPECT_EQ(BitWidth32(255), 8);
  EXPECT_EQ(BitWidth32(256), 9);
  EXPECT_EQ(BitWidth32(std::numeric_limits<uint32_t>::max()), 32);
}

TEST(BitPack, RoundTripAllWidths) {
  Rng rng(13);
  for (int bits = 0; bits <= 32; ++bits) {
    const uint32_t mask =
        bits == 32 ? std::numeric_limits<uint32_t>::max()
        : bits == 0 ? 0
                    : ((uint32_t{1} << bits) - 1);
    std::vector<uint32_t> values;
    for (int i = 0; i < 100; ++i) {
      values.push_back(static_cast<uint32_t>(rng.Next()) & mask);
    }
    // Always include the width's extremes.
    values.push_back(0);
    values.push_back(mask);
    std::string buf;
    AppendBitPacked(&buf, values.data(), values.size(), bits);
    EXPECT_EQ(buf.size(),
              (values.size() * static_cast<size_t>(bits) + 7) / 8);
    std::vector<uint32_t> out;
    const uint8_t* p = Begin(buf);
    ASSERT_TRUE(DecodeBitPacked(&p, End(buf), values.size(), bits, &out))
        << "width " << bits;
    EXPECT_EQ(out, values) << "width " << bits;
    EXPECT_EQ(p, End(buf));
  }
}

TEST(BitPack, TruncatedInputFails) {
  std::vector<uint32_t> values(64, 0x5A5);
  std::string buf;
  AppendBitPacked(&buf, values.data(), values.size(), 11);
  std::vector<uint32_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeBitPacked(&p, End(buf) - 1, values.size(), 11, &out));
}

TEST(BitPack, BadWidthFails) {
  std::string buf(16, '\0');
  std::vector<uint32_t> out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeBitPacked(&p, End(buf), 4, 33, &out));
  EXPECT_FALSE(DecodeBitPacked(&p, End(buf), 4, -1, &out));
}

// ----------------------------------------------------------- front coding --

TEST(FrontCoding, RoundTripSortedDictionary) {
  const std::vector<std::string> words = {
      "",           "a",          "aardvark",  "aardvarks", "abacus",
      "entity/000", "entity/001", "entity/0010", "zebra"};
  std::string buf;
  std::string prev;
  for (const auto& w : words) {
    AppendFrontCoded(&buf, prev, w);
    prev = w;
  }
  const uint8_t* p = Begin(buf);
  prev.clear();
  for (const auto& w : words) {
    std::string decoded;
    ASSERT_TRUE(DecodeFrontCoded(&p, End(buf), prev, &decoded));
    EXPECT_EQ(decoded, w);
    prev = decoded;
  }
  EXPECT_EQ(p, End(buf));
}

TEST(FrontCoding, RoundTripRandomBinaryStrings) {
  Rng rng(17);
  std::vector<std::string> strings;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    const size_t len = rng.Uniform(50);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.Uniform(256)));
    }
    strings.push_back(std::move(s));
  }
  std::string buf;
  std::string prev;
  for (const auto& s : strings) {
    AppendFrontCoded(&buf, prev, s);
    prev = s;
  }
  const uint8_t* p = Begin(buf);
  prev.clear();
  for (const auto& s : strings) {
    std::string decoded;
    ASSERT_TRUE(DecodeFrontCoded(&p, End(buf), prev, &decoded));
    EXPECT_EQ(decoded, s);
    prev = decoded;
  }
}

TEST(FrontCoding, SharedLongerThanPrevFails) {
  std::string buf;
  PutVarint64(&buf, 10);  // shared=10 but prev is only 3 long
  PutVarint64(&buf, 0);
  std::string out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeFrontCoded(&p, End(buf), "abc", &out));
}

TEST(FrontCoding, SuffixPastLimitFails) {
  std::string buf;
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 1000);  // claims 1000 suffix bytes, provides 2
  buf.append("xy");
  std::string out;
  const uint8_t* p = Begin(buf);
  EXPECT_FALSE(DecodeFrontCoded(&p, End(buf), "", &out));
}

// ------------------------------------------------------- corrupt fuzzing --

// Random byte soup must never crash or read out of bounds; decoders either
// fail cleanly or produce some value while staying inside [p, limit).
TEST(CorruptInput, RandomBytesNeverCrash) {
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::string buf;
    const size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.Uniform(256)));
    }
    uint64_t v64 = 0;
    const uint8_t* p = GetVarint64(Begin(buf), End(buf), &v64);
    if (p != nullptr) {
      EXPECT_LE(p, End(buf));
    }

    std::vector<uint32_t> run32;
    const uint8_t* q = Begin(buf);
    if (DecodeDeltaRun32(&q, End(buf), &run32)) {
      EXPECT_LE(q, End(buf));
    }

    std::vector<uint64_t> run64;
    q = Begin(buf);
    if (DecodeDeltaRun64(&q, End(buf), &run64)) {
      EXPECT_LE(q, End(buf));
    }

    std::string s;
    q = Begin(buf);
    if (DecodeFrontCoded(&q, End(buf), "seed-prev", &s)) {
      EXPECT_LE(q, End(buf));
    }
  }
}

// Flipping any single bit of a valid delta-run stream must decode to
// either a clean failure or a *different* well-formed prefix — never UB.
// (ASan/UBSan in CI give this test its teeth.)
TEST(CorruptInput, SingleBitFlipsHandled) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 64; ++i) values.push_back(i * i);
  std::string buf;
  AppendDeltaRun32(&buf, values.data(), values.size());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = buf;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      std::vector<uint32_t> out;
      const uint8_t* p = Begin(corrupt);
      if (DecodeDeltaRun32(&p, End(corrupt), &out)) {
        EXPECT_LE(p, End(corrupt));
      }
    }
  }
}

// -------------------------------------------------------------- checksum --

TEST(Checksum, DetectsBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint64_t clean = Fnv1a64(data.data(), data.size());
  EXPECT_EQ(clean, Fnv1a64(data.data(), data.size()));  // deterministic
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(Fnv1a64(flipped.data(), flipped.size()), clean) << i;
  }
  EXPECT_NE(Fnv1a64(data.data(), data.size() - 1), clean);
}

}  // namespace
}  // namespace kbqa::util
