// CompressedExpandedKb: bit-identical reads vs the uncompressed substrate,
// compression ratio, snapshot round-trip (resident + paged under a tiny
// decoded-block budget), and corruption negative tests.

#include "rdf/compressed_expanded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "corpus/world_generator.h"
#include "obs/wide_event.h"
#include "rdf/expanded_predicate.h"
#include "util/status.h"

namespace kbqa {
namespace {

using rdf::CompressedExpandedKb;
using rdf::ExpandedKb;
using rdf::ExpandedTriple;
using rdf::PathId;
using rdf::TermId;

struct Built {
  corpus::World world;
  ExpandedKb ekb;
};

/// Small generated world expanded from a few hundred seeds — enough to
/// produce multiple blocks at a small target block size.
Built BuildWorldAndExpansion(uint64_t seed = 7) {
  corpus::WorldConfig config;
  config.seed = seed;
  config.schema.scale = 0.05;
  config.schema.generic_attributes_per_type = 2;
  config.schema.generic_relations_per_type = 2;
  corpus::World world = corpus::GenerateWorld(config);

  rdf::ExpansionOptions options;
  options.max_length = 3;
  std::vector<TermId> seeds = world.kb.AllEntities();
  seeds.resize(std::min<size_t>(seeds.size(), 400));
  auto ekb = ExpandedKb::Build(world.kb, seeds, world.name_like, options);
  EXPECT_TRUE(ekb.ok()) << ekb.status();
  return Built{std::move(world), std::move(ekb.value())};
}

std::vector<ExpandedTriple> SortedTriples(
    const std::function<void(
        const std::function<void(const ExpandedTriple&)>&)>& for_each) {
  std::vector<ExpandedTriple> triples;
  for_each([&](const ExpandedTriple& t) { triples.push_back(t); });
  std::sort(triples.begin(), triples.end(),
            [](const ExpandedTriple& a, const ExpandedTriple& b) {
              return std::tie(a.s, a.path, a.o) < std::tie(b.s, b.path, b.o);
            });
  return triples;
}

/// Every read API must return exactly what the uncompressed substrate
/// holds, for every materialized subject and path.
void ExpectBitIdentical(const ExpandedKb& ekb, const CompressedExpandedKb& c) {
  ASSERT_EQ(c.num_triples(), ekb.num_triples());
  ASSERT_EQ(c.paths().size(), ekb.paths().size());
  for (size_t i = 0; i < ekb.paths().size(); ++i) {
    EXPECT_EQ(c.paths().GetPath(static_cast<PathId>(i)),
              ekb.paths().GetPath(static_cast<PathId>(i)));
  }
  std::vector<std::pair<PathId, TermId>> run;
  std::vector<TermId> objects;
  for (TermId s : ekb.Subjects()) {
    EXPECT_TRUE(c.Contains(s));
    ASSERT_TRUE(c.CopyOut(s, &run)) << "subject " << s;
    const auto expected = ekb.Out(s);
    ASSERT_EQ(run.size(), expected.size()) << "subject " << s;
    EXPECT_TRUE(std::equal(run.begin(), run.end(), expected.begin()));
    // Per-path point lookups, including the binary-search path boundaries.
    PathId prev_path = rdf::kInvalidPath;
    for (const auto& [path, o] : expected) {
      (void)o;
      if (path == prev_path) continue;
      prev_path = path;
      ASSERT_TRUE(c.TryObjects(s, path, &objects));
      EXPECT_EQ(objects, ekb.Objects(s, path)) << s << " path " << path;
    }
  }
}

TEST(CompressedExpandedKbTest, ReadsAreBitIdenticalToUncompressed) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;  // force multiple blocks
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_GT(c.value().num_blocks(), 4u);
  ExpectBitIdentical(b.ekb, c.value());

  // Non-materialized subjects are reported absent, not empty-materialized.
  const std::vector<TermId> subjects = b.ekb.Subjects();
  std::vector<TermId> objects;
  for (TermId s = 0; s < 100; ++s) {
    if (!std::binary_search(subjects.begin(), subjects.end(), s)) {
      EXPECT_FALSE(c.value().Contains(s));
      EXPECT_FALSE(c.value().TryObjects(s, 0, &objects));
    }
  }
}

TEST(CompressedExpandedKbTest, BlockTrafficStampsCurrentRequestContext) {
  // The pager is too deep for a context parameter: a sampled request's
  // block-cache traffic reaches its wide event via the thread-local
  // binding (obs::ScopedRequestContext, DESIGN.md §8).
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;
  auto first = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(first.ok()) << first.status();
  std::vector<std::pair<PathId, TermId>> run;
  const TermId subject = b.ekb.Subjects().front();

  // Unbound read: decodes the block, stamps nothing, crashes nothing.
  ASSERT_TRUE(first.value().CopyOut(subject, &run));
  obs::RequestContext hit_ctx;
  {
    obs::ScopedRequestContext scope(&hit_ctx);
    ASSERT_TRUE(first.value().CopyOut(subject, &run));
  }
  EXPECT_EQ(hit_ctx.block_cache_hits, 1u);  // decoded above, now resident
  EXPECT_EQ(hit_ctx.block_cache_misses, 0u);
  EXPECT_EQ(hit_ctx.blocks_decoded, 0u);

  // A fresh instance under the binding: the first read is a miss+decode.
  auto second = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(second.ok()) << second.status();
  obs::RequestContext miss_ctx;
  {
    obs::ScopedRequestContext scope(&miss_ctx);
    ASSERT_TRUE(second.value().CopyOut(subject, &run));
  }
  EXPECT_EQ(miss_ctx.block_cache_hits, 0u);
  EXPECT_EQ(miss_ctx.block_cache_misses, 1u);
  EXPECT_EQ(miss_ctx.blocks_decoded, 1u);

  // Once the scope ends the binding is gone: counters stay put.
  ASSERT_TRUE(second.value().CopyOut(subject, &run));
  EXPECT_EQ(miss_ctx.block_cache_hits, 0u);
}

TEST(CompressedExpandedKbTest, CompressesBelowRawResidency) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const auto stats = c.value().memory_stats();
  EXPECT_EQ(stats.raw_equivalent_bytes, b.ekb.ApproxResidentBytes());
  EXPECT_GT(stats.compressed_bytes, 0u);
  // The 50% acceptance bar is asserted at bench scale; at toy scale the
  // index and dictionary amortize worse, so require strictly-below-raw.
  EXPECT_LT(stats.ResidentBytes(), stats.raw_equivalent_bytes);
}

TEST(CompressedExpandedKbTest, SaveOpenRoundTripResident) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();

  const std::string path = ::testing::TempDir() + "/cekb_resident.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  auto reopened = CompressedExpandedKb::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ExpectBitIdentical(b.ekb, reopened.value());
  EXPECT_EQ(SortedTriples([&](const auto& fn) {
              reopened.value().ForEachTriple(fn);
            }),
            SortedTriples([&](const auto& fn) { b.ekb.ForEachTriple(fn); }));
  std::remove(path.c_str());
}

TEST(CompressedExpandedKbTest, PagedModeWithTinyBudgetStaysBitIdentical) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 128;
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();
  const uint64_t compressed = c.value().memory_stats().compressed_bytes;

  const std::string path = ::testing::TempDir() + "/cekb_paged.bin";
  ASSERT_TRUE(c.value().Save(path).ok());

  // Cap decoded residency at ~10% of the compressed size: most lookups
  // must page + decode, and answers must not change.
  CompressedExpandedKb::Options paged = options;
  paged.blocks_resident = false;
  paged.decoded_cache_budget_bytes = compressed / 10 + 1;
  auto reopened = CompressedExpandedKb::Open(path, paged);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ExpectBitIdentical(b.ekb, reopened.value());

  const auto stats = reopened.value().memory_stats();
  EXPECT_FALSE(stats.blocks_resident);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.corrupt_blocks, 0u);
  EXPECT_LE(stats.decoded_cache_bytes, paged.decoded_cache_budget_bytes);
  // Paged residency excludes the compressed payload entirely.
  EXPECT_LT(stats.ResidentBytes(), compressed + stats.index_bytes +
                                       stats.paths_bytes +
                                       paged.decoded_cache_budget_bytes);
  std::remove(path.c_str());
}

TEST(CompressedExpandedKbTest, TruncatedSnapshotIsCorruption) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const std::string path = ::testing::TempDir() + "/cekb_trunc_src.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut_path = ::testing::TempDir() + "/cekb_trunc_cut.bin";
  for (size_t keep : {size_t{0}, size_t{7}, bytes.size() / 4,
                      bytes.size() / 2, bytes.size() * 9 / 10,
                      bytes.size() - 1}) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    for (bool resident : {true, false}) {
      CompressedExpandedKb::Options options;
      options.blocks_resident = resident;
      auto loaded = CompressedExpandedKb::Open(cut_path, options);
      ASSERT_FALSE(loaded.ok()) << "kept " << keep << " resident=" << resident;
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << keep;
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(CompressedExpandedKbTest, BitFlippedSnapshotIsCorruption) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const std::string path = ::testing::TempDir() + "/cekb_flip_src.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Flip a byte at a stride across the whole file — header, metadata,
  // block index, and payload regions all get hit. Open must always fail
  // with a clean Corruption (checksums cover every region), in both
  // resident and paged modes.
  const std::string flip_path = ::testing::TempDir() + "/cekb_flip.bin";
  const size_t stride = std::max<size_t>(1, bytes.size() / 200);
  for (size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    for (bool resident : {true, false}) {
      CompressedExpandedKb::Options options;
      options.blocks_resident = resident;
      auto loaded = CompressedExpandedKb::Open(flip_path, options);
      ASSERT_FALSE(loaded.ok())
          << "flip at " << pos << " resident=" << resident;
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << pos;
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

}  // namespace
}  // namespace kbqa
