// CompressedExpandedKb: bit-identical reads vs the uncompressed substrate,
// compression ratio, snapshot round-trip (resident + paged under a tiny
// decoded-block budget), and corruption negative tests.

#include "rdf/compressed_expanded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "corpus/world_generator.h"
#include "obs/wide_event.h"
#include "rdf/expanded_predicate.h"
#include "util/coding.h"
#include "util/status.h"

namespace kbqa {
namespace {

using rdf::CompressedExpandedKb;
using rdf::ExpandedKb;
using rdf::ExpandedTriple;
using rdf::PathId;
using rdf::TermId;

struct Built {
  corpus::World world;
  ExpandedKb ekb;
};

/// Small generated world expanded from a few hundred seeds — enough to
/// produce multiple blocks at a small target block size.
Built BuildWorldAndExpansion(uint64_t seed = 7) {
  corpus::WorldConfig config;
  config.seed = seed;
  config.schema.scale = 0.05;
  config.schema.generic_attributes_per_type = 2;
  config.schema.generic_relations_per_type = 2;
  corpus::World world = corpus::GenerateWorld(config);

  rdf::ExpansionOptions options;
  options.max_length = 3;
  std::vector<TermId> seeds = world.kb.AllEntities();
  seeds.resize(std::min<size_t>(seeds.size(), 400));
  auto ekb = ExpandedKb::Build(world.kb, seeds, world.name_like, options);
  EXPECT_TRUE(ekb.ok()) << ekb.status();
  return Built{std::move(world), std::move(ekb.value())};
}

std::vector<ExpandedTriple> SortedTriples(
    const std::function<void(
        const std::function<void(const ExpandedTriple&)>&)>& for_each) {
  std::vector<ExpandedTriple> triples;
  for_each([&](const ExpandedTriple& t) { triples.push_back(t); });
  std::sort(triples.begin(), triples.end(),
            [](const ExpandedTriple& a, const ExpandedTriple& b) {
              return std::tie(a.s, a.path, a.o) < std::tie(b.s, b.path, b.o);
            });
  return triples;
}

/// Every read API must return exactly what the uncompressed substrate
/// holds, for every materialized subject and path.
void ExpectBitIdentical(const ExpandedKb& ekb, const CompressedExpandedKb& c) {
  ASSERT_EQ(c.num_triples(), ekb.num_triples());
  ASSERT_EQ(c.paths().size(), ekb.paths().size());
  for (size_t i = 0; i < ekb.paths().size(); ++i) {
    EXPECT_EQ(c.paths().GetPath(static_cast<PathId>(i)),
              ekb.paths().GetPath(static_cast<PathId>(i)));
  }
  std::vector<std::pair<PathId, TermId>> run;
  std::vector<TermId> objects;
  for (TermId s : ekb.Subjects()) {
    EXPECT_TRUE(c.Contains(s));
    ASSERT_TRUE(c.CopyOut(s, &run)) << "subject " << s;
    const auto expected = ekb.Out(s);
    ASSERT_EQ(run.size(), expected.size()) << "subject " << s;
    EXPECT_TRUE(std::equal(run.begin(), run.end(), expected.begin()));
    // Per-path point lookups, including the binary-search path boundaries.
    PathId prev_path = rdf::kInvalidPath;
    for (const auto& [path, o] : expected) {
      (void)o;
      if (path == prev_path) continue;
      prev_path = path;
      ASSERT_TRUE(c.TryObjects(s, path, &objects));
      EXPECT_EQ(objects, ekb.Objects(s, path)) << s << " path " << path;
    }
  }
}

TEST(CompressedExpandedKbTest, ReadsAreBitIdenticalToUncompressed) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;  // force multiple blocks
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_GT(c.value().num_blocks(), 4u);
  ExpectBitIdentical(b.ekb, c.value());

  // Non-materialized subjects are reported absent, not empty-materialized.
  const std::vector<TermId> subjects = b.ekb.Subjects();
  std::vector<TermId> objects;
  for (TermId s = 0; s < 100; ++s) {
    if (!std::binary_search(subjects.begin(), subjects.end(), s)) {
      EXPECT_FALSE(c.value().Contains(s));
      EXPECT_FALSE(c.value().TryObjects(s, 0, &objects));
    }
  }
}

TEST(CompressedExpandedKbTest, BlockTrafficStampsCurrentRequestContext) {
  // The pager is too deep for a context parameter: a sampled request's
  // block-cache traffic reaches its wide event via the thread-local
  // binding (obs::ScopedRequestContext, DESIGN.md §8).
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;
  auto first = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(first.ok()) << first.status();
  std::vector<std::pair<PathId, TermId>> run;
  const TermId subject = b.ekb.Subjects().front();

  // Unbound read: decodes the block, stamps nothing, crashes nothing.
  ASSERT_TRUE(first.value().CopyOut(subject, &run));
  obs::RequestContext hit_ctx;
  {
    obs::ScopedRequestContext scope(&hit_ctx);
    ASSERT_TRUE(first.value().CopyOut(subject, &run));
  }
  EXPECT_EQ(hit_ctx.block_cache_hits, 1u);  // decoded above, now resident
  EXPECT_EQ(hit_ctx.block_cache_misses, 0u);
  EXPECT_EQ(hit_ctx.blocks_decoded, 0u);

  // A fresh instance under the binding: the first read is a miss+decode.
  auto second = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(second.ok()) << second.status();
  obs::RequestContext miss_ctx;
  {
    obs::ScopedRequestContext scope(&miss_ctx);
    ASSERT_TRUE(second.value().CopyOut(subject, &run));
  }
  EXPECT_EQ(miss_ctx.block_cache_hits, 0u);
  EXPECT_EQ(miss_ctx.block_cache_misses, 1u);
  EXPECT_EQ(miss_ctx.blocks_decoded, 1u);

  // Once the scope ends the binding is gone: counters stay put.
  ASSERT_TRUE(second.value().CopyOut(subject, &run));
  EXPECT_EQ(miss_ctx.block_cache_hits, 0u);
}

TEST(CompressedExpandedKbTest, CompressesBelowRawResidency) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const auto stats = c.value().memory_stats();
  EXPECT_EQ(stats.raw_equivalent_bytes, b.ekb.ApproxResidentBytes());
  EXPECT_GT(stats.compressed_bytes, 0u);
  // The 50% acceptance bar is asserted at bench scale; at toy scale the
  // index and dictionary amortize worse, so require strictly-below-raw.
  EXPECT_LT(stats.ResidentBytes(), stats.raw_equivalent_bytes);
}

TEST(CompressedExpandedKbTest, SaveOpenRoundTripResident) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 256;
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();

  const std::string path = ::testing::TempDir() + "/cekb_resident.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  auto reopened = CompressedExpandedKb::Open(path, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ExpectBitIdentical(b.ekb, reopened.value());
  EXPECT_EQ(SortedTriples([&](const auto& fn) {
              reopened.value().ForEachTriple(fn);
            }),
            SortedTriples([&](const auto& fn) { b.ekb.ForEachTriple(fn); }));
  std::remove(path.c_str());
}

TEST(CompressedExpandedKbTest, PagedModeWithTinyBudgetStaysBitIdentical) {
  Built b = BuildWorldAndExpansion();
  CompressedExpandedKb::Options options;
  options.target_block_edges = 128;
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, options);
  ASSERT_TRUE(c.ok()) << c.status();
  const uint64_t compressed = c.value().memory_stats().compressed_bytes;

  const std::string path = ::testing::TempDir() + "/cekb_paged.bin";
  ASSERT_TRUE(c.value().Save(path).ok());

  // Cap decoded residency at ~10% of the compressed size: most lookups
  // must page + decode, and answers must not change.
  CompressedExpandedKb::Options paged = options;
  paged.blocks_resident = false;
  paged.decoded_cache_budget_bytes = compressed / 10 + 1;
  auto reopened = CompressedExpandedKb::Open(path, paged);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ExpectBitIdentical(b.ekb, reopened.value());

  const auto stats = reopened.value().memory_stats();
  EXPECT_FALSE(stats.blocks_resident);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.corrupt_blocks, 0u);
  EXPECT_LE(stats.decoded_cache_bytes, paged.decoded_cache_budget_bytes);
  // Paged residency excludes the compressed payload entirely.
  EXPECT_LT(stats.ResidentBytes(), compressed + stats.index_bytes +
                                       stats.paths_bytes +
                                       paged.decoded_cache_budget_bytes);
  std::remove(path.c_str());
}

TEST(CompressedExpandedKbTest, TruncatedSnapshotIsCorruption) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const std::string path = ::testing::TempDir() + "/cekb_trunc_src.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut_path = ::testing::TempDir() + "/cekb_trunc_cut.bin";
  for (size_t keep : {size_t{0}, size_t{7}, bytes.size() / 4,
                      bytes.size() / 2, bytes.size() * 9 / 10,
                      bytes.size() - 1}) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    for (bool resident : {true, false}) {
      CompressedExpandedKb::Options options;
      options.blocks_resident = resident;
      auto loaded = CompressedExpandedKb::Open(cut_path, options);
      ASSERT_FALSE(loaded.ok()) << "kept " << keep << " resident=" << resident;
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << keep;
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(CompressedExpandedKbTest, BitFlippedSnapshotIsCorruption) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const std::string path = ::testing::TempDir() + "/cekb_flip_src.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Flip a byte at a stride across the whole file — header, metadata,
  // block index, and payload regions all get hit. Open must always fail
  // with a clean Corruption (checksums cover every region), in both
  // resident and paged modes.
  const std::string flip_path = ::testing::TempDir() + "/cekb_flip.bin";
  const size_t stride = std::max<size_t>(1, bytes.size() / 200);
  for (size_t pos = 0; pos < bytes.size(); pos += stride) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    for (bool resident : {true, false}) {
      CompressedExpandedKb::Options options;
      options.blocks_resident = resident;
      auto loaded = CompressedExpandedKb::Open(flip_path, options);
      ASSERT_FALSE(loaded.ok())
          << "flip at " << pos << " resident=" << resident;
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << pos;
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// Decoded form of the checksummed metadata section, so tests can lie about
// individual counts and re-seal the section with a matching checksum: the
// FNV-1a sum catches accidental corruption, not files produced by a buggy
// or hostile writer, so count fields must be validated on their own.
struct MetaFields {
  struct Block {
    uint32_t num_subjects = 0;
    uint32_t num_edges = 0;
    uint32_t encoded_bytes = 0;
    uint64_t checksum = 0;
  };
  uint64_t num_triples = 0;
  uint64_t raw_bytes = 0;
  std::vector<std::vector<uint32_t>> paths;
  std::vector<uint32_t> subjects;
  std::vector<Block> blocks;
  // When nonzero, the encoded block-count header lies relative to the
  // actual number of index entries that follow it.
  uint64_t block_count_override = 0;
};

void ParseMeta(const std::string& meta, MetaFields* m) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(meta.data());
  const uint8_t* limit = p + meta.size();
  uint64_t num_paths = 0;
  p = util::GetVarint64(p, limit, &m->num_triples);
  ASSERT_NE(p, nullptr);
  p = util::GetVarint64(p, limit, &m->raw_bytes);
  ASSERT_NE(p, nullptr);
  p = util::GetVarint64(p, limit, &num_paths);
  ASSERT_NE(p, nullptr);
  for (uint64_t i = 0; i < num_paths; ++i) {
    uint64_t len = 0;
    p = util::GetVarint64(p, limit, &len);
    ASSERT_NE(p, nullptr);
    std::vector<uint32_t> path(len, 0);
    for (uint64_t j = 0; j < len; ++j) {
      p = util::GetVarint32(p, limit, &path[j]);
      ASSERT_NE(p, nullptr);
    }
    m->paths.push_back(std::move(path));
  }
  ASSERT_TRUE(util::DecodeDeltaRun32(&p, limit, &m->subjects));
  uint64_t num_blocks = 0;
  p = util::GetVarint64(p, limit, &num_blocks);
  ASSERT_NE(p, nullptr);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    MetaFields::Block b;
    p = util::GetVarint32(p, limit, &b.num_subjects);
    ASSERT_NE(p, nullptr);
    p = util::GetVarint32(p, limit, &b.num_edges);
    ASSERT_NE(p, nullptr);
    p = util::GetVarint32(p, limit, &b.encoded_bytes);
    ASSERT_NE(p, nullptr);
    p = util::GetFixed64(p, limit, &b.checksum);
    ASSERT_NE(p, nullptr);
    m->blocks.push_back(b);
  }
  EXPECT_EQ(p, limit);
}

std::string EncodeMeta(const MetaFields& m) {
  std::string meta;
  util::PutVarint64(&meta, m.num_triples);
  util::PutVarint64(&meta, m.raw_bytes);
  util::PutVarint64(&meta, m.paths.size());
  for (const auto& path : m.paths) {
    util::PutVarint64(&meta, path.size());
    for (uint32_t pred : path) util::PutVarint32(&meta, pred);
  }
  util::AppendDeltaRun32(&meta, m.subjects.data(), m.subjects.size());
  util::PutVarint64(&meta, m.block_count_override != 0
                               ? m.block_count_override
                               : m.blocks.size());
  for (const auto& b : m.blocks) {
    util::PutVarint32(&meta, b.num_subjects);
    util::PutVarint32(&meta, b.num_edges);
    util::PutVarint32(&meta, b.encoded_bytes);
    util::PutFixed64(&meta, b.checksum);
  }
  return meta;
}

/// Rebuilds a snapshot file around mutated metadata, re-sealing the
/// section with a correct length header and FNV-1a checksum.
std::string ResealFile(const std::string& original, const MetaFields& m) {
  uint64_t old_len = 0;
  std::memcpy(&old_len, original.data() + 8, sizeof(old_len));
  const std::string payload = original.substr(16 + old_len + 8);
  const std::string meta = EncodeMeta(m);
  std::string out = original.substr(0, 8);
  const uint64_t len = meta.size();
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out += meta;
  const uint64_t sum = util::Fnv1a64(meta.data(), meta.size());
  out.append(reinterpret_cast<const char*>(&sum), sizeof(sum));
  out += payload;
  return out;
}

TEST(CompressedExpandedKbTest, ForgedMetadataCountsAreCorruptionNotOom) {
  Built b = BuildWorldAndExpansion();
  auto c = CompressedExpandedKb::FromExpanded(b.ekb, {});
  ASSERT_TRUE(c.ok()) << c.status();
  const std::string path = ::testing::TempDir() + "/cekb_forged_src.bin";
  ASSERT_TRUE(c.value().Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  uint64_t meta_len = 0;
  std::memcpy(&meta_len, bytes.data() + 8, sizeof(meta_len));
  MetaFields original;
  ASSERT_NO_FATAL_FAILURE(ParseMeta(bytes.substr(16, meta_len), &original));
  ASSERT_FALSE(original.blocks.empty());

  const std::string forged_path = ::testing::TempDir() + "/cekb_forged.bin";
  auto open_forged = [&](const MetaFields& m) {
    const std::string forged = ResealFile(bytes, m);
    std::ofstream out(forged_path, std::ios::binary | std::ios::trunc);
    out.write(forged.data(), static_cast<std::streamsize>(forged.size()));
    out.close();
    CompressedExpandedKb::Options options;
    options.blocks_resident = true;
    return CompressedExpandedKb::Open(forged_path, options);
  };

  // Case 1: the block-count header claims 2^31 blocks — under the 2^32
  // structural cap, but 32 bytes of BlockInfo each would reserve 64 GB
  // before the per-entry decode loop could notice the bytes run out.
  // The checksum is valid, so only a byte-budget gate can stop it.
  {
    MetaFields m = original;
    m.block_count_override = uint64_t{1} << 31;
    auto loaded = open_forged(m);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }

  // Case 2: one block claims 2^30 edges (with num_triples adjusted so the
  // cross-block edge sum still balances). DecodePayload sizes its decoded
  // edge buffer from that count — an 8 GB reserve for a block whose
  // encoded form is a few KB. A valid block can never hold more edges
  // than encoded bytes, so Open must reject the index entry up front.
  {
    MetaFields m = original;
    const uint64_t lie = uint64_t{1} << 30;
    m.num_triples += lie - m.blocks[0].num_edges;
    m.blocks[0].num_edges = static_cast<uint32_t>(lie);
    auto loaded = open_forged(m);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }

  std::remove(path.c_str());
  std::remove(forged_path.c_str());
}

}  // namespace
}  // namespace kbqa
