// Cross-cutting consistency properties: repeated calls are deterministic
// and side-effect free for every QA system; variant predicate resolution
// behaves as specified; emitted SPARQL agrees with the posterior for a
// sample of benchmark questions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/variants.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"
#include "rdf/query.h"

namespace kbqa {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

TEST_F(ConsistencyTest, EverySystemIsIdempotentAcrossCalls) {
  corpus::BenchmarkConfig config;
  config.num_questions = 25;
  config.seed = 20202;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);

  std::vector<const core::QaSystemInterface*> systems =
      experiment().Baselines();
  systems.push_back(&experiment().kbqa());
  for (const core::QaSystemInterface* system : systems) {
    for (const corpus::QaPair& pair : set.questions.pairs) {
      core::AnswerResult first = system->Answer(pair.question);
      core::AnswerResult second = system->Answer(pair.question);
      EXPECT_EQ(first.answered, second.answered)
          << system->name() << ": " << pair.question;
      EXPECT_EQ(first.value, second.value)
          << system->name() << ": " << pair.question;
    }
  }
}

TEST_F(ConsistencyTest, BenchmarkRunsAreReproducible) {
  corpus::BenchmarkSet set = experiment().MakeQald1();
  eval::RunResult a = eval::RunBenchmark(experiment().kbqa(), set);
  eval::RunResult b = eval::RunBenchmark(experiment().kbqa(), set);
  EXPECT_EQ(a.counts.ri, b.counts.ri);
  EXPECT_EQ(a.counts.pro, b.counts.pro);
  EXPECT_EQ(a.counts.par, b.counts.par);
}

TEST_F(ConsistencyTest, EmittedSparqlAgreesWithAnswers) {
  // For every answered BFQ in a sample, executing the emitted structured
  // query must yield the answered value (the §1 contract: the question is
  // "mapped precisely to a structured query").
  corpus::BenchmarkConfig config;
  config.num_questions = 60;
  config.bfq_ratio = 1.0;
  config.seed = 30303;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);
  size_t checked = 0;
  for (const corpus::QaPair& pair : set.questions.pairs) {
    core::AnswerResult answer = experiment().kbqa().Answer(pair.question);
    if (!answer.answered || answer.sparql.empty()) continue;
    auto query = rdf::ParseQuery(answer.sparql);
    ASSERT_TRUE(query.ok()) << answer.sparql;
    auto rows = rdf::ExecuteQuery(experiment().world().kb, query.value());
    ASSERT_TRUE(rows.ok());
    bool found = false;
    for (const auto& row : rows.value()) {
      const rdf::KnowledgeBase& kb = experiment().world().kb;
      std::string surface = kb.IsLiteral(row[0]) ? kb.NodeString(row[0])
                                                 : kb.EntityName(row[0]);
      found = found || surface == answer.value;
    }
    EXPECT_TRUE(found) << pair.question << " -> " << answer.sparql;
    ++checked;
  }
  EXPECT_GT(checked, 15u);
}

TEST_F(ConsistencyTest, VariantPredicateResolution) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::VariantSolver solver(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(),
      core::VariantSolver::Options());

  // "people" resolves to population for $city through learned templates
  // even though no predicate is named "people".
  auto population = solver.ResolvePredicate("$city", {"population"});
  ASSERT_TRUE(population.has_value());
  auto people = solver.ResolvePredicate("$city", {"people"});
  ASSERT_TRUE(people.has_value());
  EXPECT_EQ(*population, *people);
  EXPECT_EQ(kbqa.expanded_kb().paths().ToString(*people,
                                                experiment().world().kb),
            "population");

  // Unknown phrases and stopword-only phrases resolve to nothing.
  EXPECT_FALSE(solver.ResolvePredicate("$city", {"flibbertigibbet"})
                   .has_value());
  EXPECT_FALSE(solver.ResolvePredicate("$city", {"the", "of"}).has_value());
  // A phrase from another category's vocabulary doesn't leak across.
  EXPECT_FALSE(solver.ResolvePredicate("$fruit", {"population"}).has_value());
}

TEST_F(ConsistencyTest, AnswerValuesListMatchesSparqlRowCount) {
  core::AnswerResult result =
      experiment().kbqa().Answer("who are the members of coldplay");
  ASSERT_TRUE(result.answered);
  ASSERT_FALSE(result.sparql.empty());
  auto query = rdf::ParseQuery(result.sparql);
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(experiment().world().kb, query.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), result.values.size());
}

TEST_F(ConsistencyTest, HybridNeverAnswersLessThanPrimary) {
  corpus::BenchmarkSet set = experiment().MakeQald3();
  for (const core::QaSystemInterface* baseline : experiment().Baselines()) {
    core::HybridSystem hybrid(&experiment().kbqa(), baseline);
    eval::RunResult primary = eval::RunBenchmark(experiment().kbqa(), set);
    eval::RunResult combined = eval::RunBenchmark(hybrid, set);
    EXPECT_GE(combined.counts.pro, primary.counts.pro) << baseline->name();
    EXPECT_GE(combined.counts.ri, primary.counts.ri) << baseline->name();
  }
}

}  // namespace
}  // namespace kbqa
