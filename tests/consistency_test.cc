// Cross-cutting consistency properties: repeated calls are deterministic
// and side-effect free for every QA system; variant predicate resolution
// behaves as specified; emitted SPARQL agrees with the posterior for a
// sample of benchmark questions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/variants.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"
#include "rdf/query.h"

namespace kbqa {
namespace {

class ConsistencyTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

TEST_F(ConsistencyTest, EverySystemIsIdempotentAcrossCalls) {
  corpus::BenchmarkConfig config;
  config.num_questions = 25;
  config.seed = 20202;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);

  std::vector<const core::QaSystemInterface*> systems =
      experiment().Baselines();
  systems.push_back(&experiment().kbqa());
  for (const core::QaSystemInterface* system : systems) {
    for (const corpus::QaPair& pair : set.questions.pairs) {
      core::AnswerResult first = system->Answer(pair.question);
      core::AnswerResult second = system->Answer(pair.question);
      EXPECT_EQ(first.answered, second.answered)
          << system->name() << ": " << pair.question;
      EXPECT_EQ(first.value, second.value)
          << system->name() << ": " << pair.question;
    }
  }
}

TEST_F(ConsistencyTest, BenchmarkRunsAreReproducible) {
  corpus::BenchmarkSet set = experiment().MakeQald1();
  eval::RunResult a = eval::RunBenchmark(experiment().kbqa(), set);
  eval::RunResult b = eval::RunBenchmark(experiment().kbqa(), set);
  EXPECT_EQ(a.counts.ri, b.counts.ri);
  EXPECT_EQ(a.counts.pro, b.counts.pro);
  EXPECT_EQ(a.counts.par, b.counts.par);
}

TEST_F(ConsistencyTest, EmittedSparqlAgreesWithAnswers) {
  // For every answered BFQ in a sample, executing the emitted structured
  // query must yield the answered value (the §1 contract: the question is
  // "mapped precisely to a structured query").
  corpus::BenchmarkConfig config;
  config.num_questions = 60;
  config.bfq_ratio = 1.0;
  config.seed = 30303;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);
  size_t checked = 0;
  for (const corpus::QaPair& pair : set.questions.pairs) {
    core::AnswerResult answer = experiment().kbqa().Answer(pair.question);
    if (!answer.answered || answer.sparql.empty()) continue;
    auto query = rdf::ParseQuery(answer.sparql);
    ASSERT_TRUE(query.ok()) << answer.sparql;
    auto rows = rdf::ExecuteQuery(experiment().world().kb, query.value());
    ASSERT_TRUE(rows.ok());
    bool found = false;
    for (const auto& row : rows.value()) {
      const rdf::KnowledgeBase& kb = experiment().world().kb;
      std::string surface = kb.IsLiteral(row[0]) ? kb.NodeString(row[0])
                                                 : kb.EntityName(row[0]);
      found = found || surface == answer.value;
    }
    EXPECT_TRUE(found) << pair.question << " -> " << answer.sparql;
    ++checked;
  }
  EXPECT_GT(checked, 15u);
}

TEST_F(ConsistencyTest, VariantPredicateResolution) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::VariantSolver solver(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(),
      core::VariantSolver::Options());

  // "people" resolves to population for $city through learned templates
  // even though no predicate is named "people".
  auto population = solver.ResolvePredicate("$city", {"population"});
  ASSERT_TRUE(population.has_value());
  auto people = solver.ResolvePredicate("$city", {"people"});
  ASSERT_TRUE(people.has_value());
  EXPECT_EQ(*population, *people);
  EXPECT_EQ(kbqa.expanded_kb().paths().ToString(*people,
                                                experiment().world().kb),
            "population");

  // Unknown phrases and stopword-only phrases resolve to nothing.
  EXPECT_FALSE(solver.ResolvePredicate("$city", {"flibbertigibbet"})
                   .has_value());
  EXPECT_FALSE(solver.ResolvePredicate("$city", {"the", "of"}).has_value());
  // A phrase from another category's vocabulary doesn't leak across.
  EXPECT_FALSE(solver.ResolvePredicate("$fruit", {"population"}).has_value());
}

TEST_F(ConsistencyTest, AnswerValuesListMatchesSparqlRowCount) {
  core::AnswerResult result =
      experiment().kbqa().Answer("who are the members of coldplay");
  ASSERT_TRUE(result.answered);
  ASSERT_FALSE(result.sparql.empty());
  auto query = rdf::ParseQuery(result.sparql);
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(experiment().world().kb, query.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), result.values.size());
}

// The compressed expanded-KB substrate and the process memory budget are
// pure representation/residency changes: every swept configuration must
// answer bit-identically to the uncompressed, unbudgeted engine.
TEST_F(ConsistencyTest, CompressedSubstrateAndBudgetsDontChangeAnswers) {
  corpus::BenchmarkConfig config;
  config.num_questions = 30;
  config.seed = 90909;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);

  core::KbqaOptions base = experiment().kbqa().options();
  base.use_compressed_expansion = false;
  base.process_memory_budget_bytes = 0;
  core::KbqaSystem reference(&experiment().world(), base);
  ASSERT_TRUE(reference.Train(experiment().train_corpus()).ok());
  ASSERT_EQ(reference.compressed_expanded_kb(), nullptr);

  // Unbounded compressed, a roomy budget, and a starvation budget (the
  // decoded-block and memo caches get a few KB each and churn constantly).
  const uint64_t budgets[] = {0, 4u << 20, 32u << 10};
  for (uint64_t budget : budgets) {
    core::KbqaOptions options = base;
    options.use_compressed_expansion = true;
    options.compressed_block_edges = 512;  // several blocks even at test scale
    options.process_memory_budget_bytes = budget;
    core::KbqaSystem system(&experiment().world(), options);
    ASSERT_TRUE(system.Train(experiment().train_corpus()).ok());
    ASSERT_NE(system.compressed_expanded_kb(), nullptr);

    for (const corpus::QaPair& pair : set.questions.pairs) {
      core::AnswerResult got = system.Answer(pair.question);
      core::AnswerResult want = reference.Answer(pair.question);
      EXPECT_EQ(got.answered, want.answered) << budget << " " << pair.question;
      EXPECT_EQ(got.value, want.value) << budget << " " << pair.question;
      EXPECT_EQ(got.score, want.score) << budget << " " << pair.question;
      EXPECT_EQ(got.predicate, want.predicate) << budget << " " << pair.question;
      EXPECT_EQ(got.sparql, want.sparql) << budget << " " << pair.question;
      EXPECT_EQ(got.values, want.values) << budget << " " << pair.question;
      ASSERT_EQ(got.ranked.size(), want.ranked.size()) << pair.question;
      for (size_t i = 0; i < got.ranked.size(); ++i) {
        EXPECT_EQ(got.ranked[i].value, want.ranked[i].value);
        EXPECT_EQ(got.ranked[i].score, want.ranked[i].score) << "bit-exact";
      }
    }

    const rdf::CompressedExpandedKb::MemoryStats stats =
        system.compressed_expanded_kb()->memory_stats();
    EXPECT_EQ(stats.corrupt_blocks, 0u);
    EXPECT_LT(stats.ResidentBytes(), stats.raw_equivalent_bytes) << budget;
    if (budget != 0) {
      EXPECT_GT(stats.decoded_cache_budget_bytes, 0u);
      EXPECT_LE(stats.decoded_cache_bytes, stats.decoded_cache_budget_bytes);
    }
    system.PublishMemoryGauges();
    obs::MetricsSnapshot snapshot = core::KbqaSystem::MetricsSnapshot();
    ASSERT_NE(snapshot.gauge("mem.ekb_compressed.bytes"), nullptr);
    EXPECT_EQ(snapshot.gauge("mem.ekb_compressed.bytes")->value,
              static_cast<double>(stats.compressed_bytes));
  }
}

TEST_F(ConsistencyTest, HybridNeverAnswersLessThanPrimary) {
  corpus::BenchmarkSet set = experiment().MakeQald3();
  for (const core::QaSystemInterface* baseline : experiment().Baselines()) {
    core::HybridSystem hybrid(&experiment().kbqa(), baseline);
    eval::RunResult primary = eval::RunBenchmark(experiment().kbqa(), set);
    eval::RunResult combined = eval::RunBenchmark(hybrid, set);
    EXPECT_GE(combined.counts.pro, primary.counts.pro) << baseline->name();
    EXPECT_GE(combined.counts.ri, primary.counts.ri) << baseline->name();
  }
}

}  // namespace
}  // namespace kbqa
