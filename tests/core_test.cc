#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/answer_type.h"
#include "core/em_learner.h"
#include "core/ev_extraction.h"
#include "core/template_store.h"
#include "nlp/ner.h"
#include "nlp/question_classifier.h"
#include "nlp/tokenizer.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "taxonomy/taxonomy.h"

namespace kbqa::core {
namespace {

using nlp::QuestionClass;

// ---------- ContainsTokenRun ----------

TEST(ContainsTokenRunTest, Basics) {
  std::vector<std::string> haystack = {"it", "s", "390000", "people"};
  EXPECT_TRUE(ContainsTokenRun(haystack, {"390000"}));
  EXPECT_TRUE(ContainsTokenRun(haystack, {"s", "390000"}));
  EXPECT_FALSE(ContainsTokenRun(haystack, {"390"}));
  EXPECT_FALSE(ContainsTokenRun(haystack, {"people", "390000"}));
  EXPECT_FALSE(ContainsTokenRun(haystack, {}));
  EXPECT_FALSE(ContainsTokenRun({}, {"x"}));
}

// ---------- MakeTemplateText ----------

TEST(TemplateTextTest, ReplacesMentionWithCategory) {
  std::vector<std::string> tokens = {"how", "many", "people", "are", "there",
                                     "in", "honolulu"};
  EXPECT_EQ(MakeTemplateText(tokens, 6, 7, "$city"),
            "how many people are there in $city");
  std::vector<std::string> possessive = {"barack", "obama", "s", "wife"};
  EXPECT_EQ(MakeTemplateText(possessive, 0, 2, "$person"),
            "$person s wife");
}

// ---------- TemplateStore ----------

TEST(TemplateStoreTest, InternLookupRoundTrip) {
  TemplateStore store;
  TemplateId a = store.Intern("when was $person born");
  TemplateId b = store.Intern("when was $person born");
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.Lookup("when was $person born"),
            std::optional<TemplateId>(a));
  EXPECT_FALSE(store.Lookup("unknown $x").has_value());
  EXPECT_EQ(store.TemplateText(a), "when was $person born");
}

TEST(TemplateStoreTest, DistributionIsSortedDescending) {
  TemplateStore store;
  TemplateId t = store.Intern("t");
  store.SetDistribution(t, {{2, 0.1}, {5, 0.7}, {9, 0.2}});
  auto dist = store.Distribution(t);
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_EQ(dist[0].path, 5u);
  EXPECT_EQ(dist[1].path, 9u);
  EXPECT_EQ(dist[2].path, 2u);
  EXPECT_EQ(store.Best(t)->path, 5u);
}

TEST(TemplateStoreTest, EmptyDistributionHasNoBest) {
  TemplateStore store;
  TemplateId t = store.Intern("t");
  EXPECT_FALSE(store.Best(t).has_value());
  EXPECT_TRUE(store.Distribution(t).empty());
}

TEST(TemplateStoreTest, FrequencyRanking) {
  TemplateStore store;
  TemplateId a = store.Intern("a");
  TemplateId b = store.Intern("b");
  store.AddFrequency(b, 10);
  store.AddFrequency(a, 3);
  auto ranked = store.TemplatesByFrequency();
  EXPECT_EQ(ranked.front(), b);
  EXPECT_EQ(store.Frequency(b), 10u);
}

TEST(TemplateStoreTest, DistinctPredicateCounts) {
  TemplateStore store;
  TemplateId a = store.Intern("a");
  TemplateId b = store.Intern("b");
  store.SetDistribution(a, {{1, 0.9}, {2, 0.1}});
  store.SetDistribution(b, {{1, 1.0}});
  EXPECT_EQ(store.NumDistinctPredicates(), 2u);
  EXPECT_EQ(store.NumDistinctBestPredicates(), 1u);  // both argmax to 1
}

// ---------- PathAnswerClass ----------

TEST(AnswerTypeTest, WalksPastNameLikeTail) {
  PredicateClassMap classes = {{1, QuestionClass::kHuman},
                               {3, QuestionClass::kNumeric}};
  std::unordered_set<rdf::PredId> name_like = {0};
  // marriage(2) -> person(1) -> name(0): label of person.
  EXPECT_EQ(PathAnswerClass({2, 1, 0}, classes, name_like),
            QuestionClass::kHuman);
  // dob(3): direct label.
  EXPECT_EQ(PathAnswerClass({3}, classes, name_like),
            QuestionClass::kNumeric);
  // name(0) alone: transparent, unknown.
  EXPECT_EQ(PathAnswerClass({0}, classes, name_like),
            QuestionClass::kUnknown);
  // unlabeled pred(7): unknown.
  EXPECT_EQ(PathAnswerClass({7}, classes, name_like),
            QuestionClass::kUnknown);
}

TEST(AnswerTypeTest, Compatibility) {
  EXPECT_TRUE(AnswerClassCompatible(QuestionClass::kNumeric,
                                    QuestionClass::kNumeric));
  EXPECT_FALSE(
      AnswerClassCompatible(QuestionClass::kNumeric, QuestionClass::kHuman));
  EXPECT_TRUE(AnswerClassCompatible(QuestionClass::kUnknown,
                                    QuestionClass::kHuman));
  EXPECT_TRUE(AnswerClassCompatible(QuestionClass::kNumeric,
                                    QuestionClass::kUnknown));
  EXPECT_TRUE(AnswerClassCompatible(QuestionClass::kDescription,
                                    QuestionClass::kLocation));
}

// ---------- Micro world for extraction + EM ----------

/// A hand-built two-city/two-person world small enough to verify every
/// extraction and learning step by hand.
class MicroWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_ = kb_.AddPredicate("name");
    kb_.SetNamePredicate(name_);
    population_ = kb_.AddPredicate("population");
    area_ = kb_.AddPredicate("area");
    dob_ = kb_.AddPredicate("dob");
    profession_ = kb_.AddPredicate("profession");
    marriage_ = kb_.AddPredicate("marriage");
    person_pred_ = kb_.AddPredicate("person");

    honolulu_ = AddNamed("city/honolulu", "honolulu");
    tokyo_ = AddNamed("city/tokyo", "tokyo");
    obama_ = AddNamed("person/obama", "barack obama");
    michelle_ = AddNamed("person/michelle", "michelle obama");

    kb_.AddTriple(honolulu_, population_, kb_.AddLiteral("390000"));
    kb_.AddTriple(honolulu_, area_, kb_.AddLiteral("177"));
    kb_.AddTriple(tokyo_, population_, kb_.AddLiteral("13960000"));
    kb_.AddTriple(tokyo_, area_, kb_.AddLiteral("2194"));
    kb_.AddTriple(obama_, dob_, kb_.AddLiteral("1961"));
    kb_.AddTriple(obama_, profession_, kb_.AddLiteral("politician"));
    rdf::TermId cvt = kb_.AddEntity("marriage/1");
    kb_.AddTriple(obama_, marriage_, cvt);
    kb_.AddTriple(cvt, person_pred_, michelle_);
    kb_.AddTriple(michelle_, dob_, kb_.AddLiteral("1964"));
    kb_.Freeze();

    city_cat_ = taxonomy_.AddCategory("$city");
    person_cat_ = taxonomy_.AddCategory("$person");
    taxonomy_.AddEntityCategory(honolulu_, city_cat_, 1.0);
    taxonomy_.AddEntityCategory(tokyo_, city_cat_, 1.0);
    taxonomy_.AddEntityCategory(obama_, person_cat_, 1.0);
    taxonomy_.AddEntityCategory(michelle_, person_cat_, 1.0);

    classes_ = {{population_, QuestionClass::kNumeric},
                {area_, QuestionClass::kNumeric},
                {dob_, QuestionClass::kNumeric},
                {profession_, QuestionClass::kEntity},
                {person_pred_, QuestionClass::kHuman}};
    name_like_ = {name_};

    rdf::ExpansionOptions options;
    options.max_length = 3;
    auto ekb = rdf::ExpandedKb::Build(
        kb_, {honolulu_, tokyo_, obama_, michelle_}, name_like_, options);
    ASSERT_TRUE(ekb.ok()) << ekb.status();
    ekb_ = std::make_unique<rdf::ExpandedKb>(std::move(ekb).value());

    ner_ = std::make_unique<nlp::GazetteerNer>(kb_);
    EvExtractor::Options ev_options;
    extractor_ = std::make_unique<EvExtractor>(&kb_, ekb_.get(), ner_.get(),
                                               &classifier_, &classes_,
                                               &name_like_, ev_options);
  }

  rdf::TermId AddNamed(const std::string& iri, const std::string& name) {
    rdf::TermId e = kb_.AddEntity(iri);
    kb_.AddTriple(e, name_, kb_.AddLiteral(name));
    return e;
  }

  std::vector<EvCandidate> Extract(const std::string& q,
                                   const std::string& a) {
    return extractor_->Extract(nlp::TokenizeQuestion(q), a);
  }

  rdf::KnowledgeBase kb_;
  taxonomy::Taxonomy taxonomy_;
  rdf::PredId name_, population_, area_, dob_, profession_, marriage_,
      person_pred_;
  rdf::TermId honolulu_, tokyo_, obama_, michelle_;
  taxonomy::CategoryId city_cat_, person_cat_;
  PredicateClassMap classes_;
  std::unordered_set<rdf::PredId> name_like_;
  std::unique_ptr<rdf::ExpandedKb> ekb_;
  std::unique_ptr<nlp::GazetteerNer> ner_;
  nlp::QuestionClassifier classifier_;
  std::unique_ptr<EvExtractor> extractor_;
};

TEST_F(MicroWorldTest, ExtractsDirectAttribute) {
  auto candidates = Extract("how many people are there in honolulu",
                            "it 's 390000 .");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].entity, honolulu_);
  EXPECT_EQ(kb_.NodeString(candidates[0].value), "390000");
  ASSERT_EQ(candidates[0].paths.size(), 1u);
  EXPECT_EQ(ekb_->paths().GetPath(candidates[0].paths[0]),
            (rdf::PredPath{population_}));
}

TEST_F(MicroWorldTest, ExtractsCvtSpouse) {
  auto candidates = Extract("who is the wife of barack obama",
                            "michelle obama of course .");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].entity, obama_);
  ASSERT_EQ(candidates[0].paths.size(), 1u);
  EXPECT_EQ(ekb_->paths().GetPath(candidates[0].paths[0]),
            (rdf::PredPath{marriage_, person_pred_, name_}));
}

TEST_F(MicroWorldTest, RefinementFiltersClassMismatch) {
  // "when was ... born" is NUM; the answer also contains the ENTY-classed
  // profession value "politician", which must be filtered (the paper's
  // Example 2 refinement).
  auto candidates = Extract("when was barack obama born",
                            "the politician was born in 1961 .");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(kb_.NodeString(candidates[0].value), "1961");

  // Without refinement the noise pair survives.
  EvExtractor::Options loose;
  loose.refine_by_question_class = false;
  EvExtractor unrefined(&kb_, ekb_.get(), ner_.get(), &classifier_, &classes_,
                        &name_like_, loose);
  auto noisy = unrefined.Extract(
      nlp::TokenizeQuestion("when was barack obama born"),
      "the politician was born in 1961 .");
  EXPECT_EQ(noisy.size(), 2u);
}

TEST_F(MicroWorldTest, NoMentionNoCandidates) {
  EXPECT_TRUE(Extract("how is the weather", "it 's 390000 .").empty());
  EXPECT_TRUE(Extract("how many people are there in honolulu", "").empty());
}

TEST_F(MicroWorldTest, ValueMustMatchTokenBoundaries) {
  // "13960000" must not be found inside "913960000x"-style runs; token
  // match requires exact token equality.
  auto candidates = Extract("how many people are there in tokyo",
                            "maybe 113960000 people");
  EXPECT_TRUE(candidates.empty());
}

TEST_F(MicroWorldTest, MultipleEntitiesShareUniformProbability) {
  // Two mentions: honolulu and tokyo; answer carries tokyo's value.
  auto candidates = Extract("is honolulu bigger than tokyo",
                            "tokyo has 13960000 people .");
  ASSERT_GE(candidates.size(), 1u);
  bool found_tokyo = false;
  for (const auto& c : candidates) {
    found_tokyo = found_tokyo || (c.entity == tokyo_);
  }
  EXPECT_TRUE(found_tokyo);
}

// ---------- EM learning on the micro world ----------

class MicroEmTest : public MicroWorldTest {
 protected:
  corpus::QaCorpus MakePopulationCorpus(int n) const {
    corpus::QaCorpus corpus;
    for (int i = 0; i < n; ++i) {
      const bool tokyo = (i % 2 == 0);
      corpus::QaPair pair;
      pair.question = std::string("how many people are there in ") +
                      (tokyo ? "tokyo" : "honolulu");
      pair.answer = std::string("it 's ") +
                    (tokyo ? "13960000" : "390000") + " .";
      corpus.pairs.push_back(pair);
      corpus.gold.emplace_back();
    }
    return corpus;
  }
};

TEST_F(MicroEmTest, LearnsPopulationTemplate) {
  EmOptions options;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(), options);
  TemplateStore store;
  EmStats stats;
  ASSERT_TRUE(learner.Train(MakePopulationCorpus(20), &store, &stats).ok());

  auto t = store.Lookup("how many people are there in $city");
  ASSERT_TRUE(t.has_value());
  auto best = store.Best(*t);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(ekb_->paths().GetPath(best->path), (rdf::PredPath{population_}));
  EXPECT_GT(best->probability, 0.99);
  EXPECT_EQ(stats.num_observations, 20u);
}

TEST_F(MicroEmTest, LogLikelihoodIsMonotone) {
  EmOptions options;
  options.tolerance = 0;  // force all iterations
  options.max_iterations = 10;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(), options);
  TemplateStore store;
  EmStats stats;
  ASSERT_TRUE(learner.Train(MakePopulationCorpus(20), &store, &stats).ok());
  ASSERT_GE(stats.log_likelihood.size(), 2u);
  for (size_t i = 1; i < stats.log_likelihood.size(); ++i) {
    EXPECT_GE(stats.log_likelihood[i], stats.log_likelihood[i - 1] - 1e-9)
        << "EM likelihood must not decrease (iteration " << i << ")";
  }
}

TEST_F(MicroEmTest, ThetaRowsAreNormalized) {
  EmOptions options;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(), options);
  TemplateStore store;
  EmStats stats;
  ASSERT_TRUE(learner.Train(MakePopulationCorpus(20), &store, &stats).ok());
  for (TemplateId t = 0; t < store.num_templates(); ++t) {
    double sum = 0;
    for (const auto& entry : store.Distribution(t)) sum += entry.probability;
    if (!store.Distribution(t).empty()) {
      EXPECT_NEAR(sum, 1.0, 1e-6) << store.TemplateText(t);
    }
  }
}

TEST_F(MicroEmTest, InitOnlyAblationStaysUniform) {
  // Craft ambiguity: a question whose value matches two predicates —
  // Honolulu with area text equal to population text would be needed; here
  // we instead check that run_em = false leaves θ at the Eq. 23 uniform
  // initialization for a template observed with a single path (still 1.0)
  // and that EM and init-only agree in the unambiguous case.
  EmOptions init_only;
  init_only.run_em = false;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(),
                    init_only);
  TemplateStore store;
  EmStats stats;
  ASSERT_TRUE(learner.Train(MakePopulationCorpus(10), &store, &stats).ok());
  EXPECT_EQ(stats.iterations, 0);
  EXPECT_TRUE(stats.log_likelihood.empty());
  auto t = store.Lookup("how many people are there in $city");
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(store.Best(*t)->probability, 1.0, 1e-9);
}

TEST_F(MicroEmTest, EmDisambiguatesSharedValueText) {
  // Add a trap: give Tokyo an "area" equal to Honolulu's population string
  // is impossible (distinct entities), so instead create ambiguity on one
  // entity: a literal that matches both area and population of Honolulu.
  // We simulate by asking area-phrased questions and population-phrased
  // questions that share the template only through the ambiguous phrasing
  // "how big is $city" — half answered with area, half with population.
  corpus::QaCorpus corpus;
  auto add = [&](const std::string& q, const std::string& a) {
    corpus.pairs.push_back({q, a});
    corpus.gold.emplace_back();
  };
  for (int i = 0; i < 6; ++i) {
    add("how big is honolulu", "it 's 177 .");          // area sense
    add("how big is tokyo", "it 's 2194 .");            // area sense
  }
  for (int i = 0; i < 2; ++i) {
    add("how big is honolulu", "it 's 390000 .");       // population sense
  }
  EmOptions options;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(), options);
  TemplateStore store;
  EmStats stats;
  ASSERT_TRUE(learner.Train(corpus, &store, &stats).ok());
  auto t = store.Lookup("how big is $city");
  ASSERT_TRUE(t.has_value());
  auto dist = store.Distribution(*t);
  ASSERT_GE(dist.size(), 2u);
  // Majority sense (area: 12 of 14) must dominate but not erase the rest.
  EXPECT_EQ(ekb_->paths().GetPath(dist[0].path), (rdf::PredPath{area_}));
  EXPECT_GT(dist[0].probability, 0.6);
  EXPECT_GT(dist[1].probability, 0.0);
}

TEST_F(MicroEmTest, EmptyCorpusFailsCleanly) {
  EmOptions options;
  EmLearner learner(&kb_, ekb_.get(), &taxonomy_, extractor_.get(), options);
  TemplateStore store;
  EmStats stats;
  corpus::QaCorpus empty;
  Status status = learner.Train(empty, &store, &stats);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace kbqa::core
