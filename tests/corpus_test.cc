#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "corpus/name_generator.h"
#include "corpus/qa_generator.h"
#include "corpus/schema.h"
#include "corpus/world_generator.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "rdf/expanded_predicate.h"
#include "util/rng.h"
#include "util/strings.h"

namespace kbqa::corpus {
namespace {

// ---------- NameGenerator ----------

TEST(NameGeneratorTest, DeterministicForSameState) {
  Rng a(1), b(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(NameGenerator::Generate(a, NameStyle::kPerson),
              NameGenerator::Generate(b, NameStyle::kPerson));
  }
}

TEST(NameGeneratorTest, StylesProduceExpectedShapes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::string person = NameGenerator::Generate(rng, NameStyle::kPerson);
    EXPECT_NE(person.find(' '), std::string::npos) << person;
    std::string river = NameGenerator::Generate(rng, NameStyle::kRiver);
    EXPECT_TRUE(river.ends_with(" river")) << river;
    std::string band = NameGenerator::Generate(rng, NameStyle::kBand);
    EXPECT_TRUE(band.starts_with("the ")) << band;
    EXPECT_TRUE(band.ends_with("s")) << band;
  }
}

TEST(NameGeneratorTest, NamesAreLowercaseTokens) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string name = NameGenerator::Generate(rng, NameStyle::kCompany);
    EXPECT_EQ(nlp::NormalizeText(name), name) << name;
  }
}

// ---------- Schema ----------

class SchemaTest : public ::testing::Test {
 protected:
  Schema schema_ = Schema::Standard();
};

TEST_F(SchemaTest, HasAllTypes) {
  for (const char* type : {"person", "city", "country", "company", "book",
                           "band", "film", "river", "university", "fruit"}) {
    EXPECT_GE(schema_.TypeIndex(type), 0) << type;
  }
  EXPECT_EQ(schema_.TypeIndex("dragon"), -1);
}

TEST_F(SchemaTest, GenericIntentsScaleTheSchema) {
  // 10 types x (12 attributes + 4 relations) on top of the hand-authored
  // core.
  EXPECT_GT(schema_.intents().size(), 150u);
  SchemaConfig tiny;
  tiny.generic_attributes_per_type = 0;
  tiny.generic_relations_per_type = 0;
  Schema bare = Schema::Standard(tiny);
  EXPECT_LT(bare.intents().size(), 50u);
  EXPECT_GT(bare.intents().size(), 35u);
}

TEST_F(SchemaTest, IntentsOfTypePartitionIntents) {
  size_t total = 0;
  for (int t = 0; t < static_cast<int>(schema_.types().size()); ++t) {
    total += schema_.IntentsOfType(t).size();
  }
  EXPECT_EQ(total, schema_.intents().size());
}

TEST_F(SchemaTest, PaperIntentsExist) {
  for (const char* name :
       {"city.population", "person.dob", "person.spouse", "country.capital",
        "company.ceo", "band.members", "book.author"}) {
    EXPECT_GE(schema_.IntentIndex(name), 0) << name;
  }
}

TEST_F(SchemaTest, SpouseIsCvtPath) {
  const IntentSpec& spouse =
      schema_.intents()[schema_.IntentIndex("person.spouse")];
  EXPECT_EQ(spouse.path,
            (std::vector<std::string>{"marriage", "person", "name"}));
  EXPECT_TRUE(spouse.is_relation());
  EXPECT_EQ(spouse.keyword, "wife");
}

/// Property sweep: every intent of the standard schema is well-formed.
class IntentPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  static const Schema& schema() {
    static const Schema* const kSchema = new Schema(Schema::Standard());
    return *kSchema;
  }
};

TEST_P(IntentPropertyTest, IntentIsWellFormed) {
  const IntentSpec& intent = schema().intents()[GetParam()];
  EXPECT_FALSE(intent.name.empty());
  EXPECT_GE(intent.entity_type, 0);
  EXPECT_LT(intent.entity_type, static_cast<int>(schema().types().size()));
  EXPECT_FALSE(intent.path.empty());
  EXPECT_LE(intent.path.size(), 3u);
  EXPECT_FALSE(intent.keyword.empty());
  EXPECT_GE(intent.min_fanout, 1);
  EXPECT_LE(intent.min_fanout, intent.max_fanout);
  EXPECT_GT(intent.popularity, 0);

  if (intent.is_relation()) {
    EXPECT_EQ(intent.path.back(), "name");
    EXPECT_LT(intent.target_type, static_cast<int>(schema().types().size()));
  } else {
    EXPECT_EQ(intent.path.size(), 1u);
    if (intent.value_kind == ValueKind::kWord) {
      EXPECT_FALSE(intent.word_values.empty());
    } else {
      EXPECT_LE(intent.min_value, intent.max_value);
    }
  }

  // Paraphrases: at least one training + every pattern carries the slot.
  bool has_train = false;
  for (const Paraphrase& p : intent.paraphrases) {
    EXPECT_NE(p.pattern.find("$e"), std::string::npos) << p.pattern;
    EXPECT_GT(p.weight, 0);
    has_train = has_train || p.train;
  }
  EXPECT_TRUE(has_train) << intent.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllIntents, IntentPropertyTest,
    ::testing::Range(0,
                     static_cast<int>(Schema::Standard().intents().size())));

// ---------- World generation ----------

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World* const kWorld = [] {
      WorldConfig config;
      config.schema.scale = 0.05;
      config.schema.generic_attributes_per_type = 2;
      config.schema.generic_relations_per_type = 2;
      return new World(GenerateWorld(config));
    }();
    return *kWorld;
  }
};

TEST_F(WorldTest, KbIsFrozenAndPopulated) {
  EXPECT_TRUE(world().kb.frozen());
  EXPECT_GT(world().kb.num_triples(), 1000u);
  EXPECT_GT(world().kb.num_entities(), 100u);
  EXPECT_GT(world().taxonomy.num_categories(), 10u);
}

TEST_F(WorldTest, FamousEntitiesAreWired) {
  rdf::TermId obama = world().FamousByName("barack obama");
  ASSERT_NE(obama, rdf::kInvalidTerm);
  // dob = 1961 via the fact catalog.
  int dob = world().schema.IntentIndex("person.dob");
  const auto* values = world().FactValues(dob, obama);
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(world().ValueSurface((*values)[0]), "1961");
  // Spouse via the marriage CVT in the raw KB.
  auto marriage = world().kb.LookupPredicate("marriage");
  auto person = world().kb.LookupPredicate("person");
  auto name = world().kb.LookupPredicate("name");
  ASSERT_TRUE(marriage && person && name);
  auto spouses = rdf::ObjectsViaPath(world().kb, obama,
                                     {*marriage, *person, *name});
  ASSERT_EQ(spouses.size(), 1u);
  EXPECT_EQ(world().kb.NodeString(spouses[0]), "michelle obama");
}

TEST_F(WorldTest, EntityCountsMatchSchema) {
  for (size_t t = 0; t < world().schema.types().size(); ++t) {
    // Generated entities plus any famous seeds of that type.
    EXPECT_GE(world().entities_by_type[t].size(),
              world().schema.types()[t].count);
  }
}

TEST_F(WorldTest, PolysemousNamesExist) {
  int fruit = world().schema.TypeIndex("fruit");
  int company = world().schema.TypeIndex("company");
  size_t shared = 0;
  for (rdf::TermId f : world().entities_by_type[fruit]) {
    auto with_name = world().kb.EntitiesByName(world().kb.EntityName(f));
    for (rdf::TermId other : with_name) {
      for (rdf::TermId c : world().entities_by_type[company]) {
        if (other == c) ++shared;
      }
    }
  }
  EXPECT_GE(shared, 1u);
}

TEST_F(WorldTest, AliasesAreNameLikeAndWellFormed) {
  // The alias predicate exists, is name-like (expansion tail rule), and no
  // alias is a stopword or trivially short.
  auto alias = world().kb.LookupPredicate("alias");
  ASSERT_TRUE(alias.has_value());
  EXPECT_EQ(world().alias_predicates,
            (std::vector<rdf::PredId>{*alias}));
  EXPECT_TRUE(world().name_like.count(*alias) > 0);
  size_t aliases = 0;
  for (rdf::TermId e : world().kb.AllEntities()) {
    for (const auto& po : world().kb.ObjectsRange(e, *alias)) {
      const std::string& text = world().kb.NodeString(po.o);
      EXPECT_GT(text.size(), 3u);
      EXPECT_FALSE(nlp::IsStopword(text)) << text;
      ++aliases;
    }
  }
  EXPECT_GT(aliases, 5u);
}

TEST_F(WorldTest, PredicateClassesLabeled) {
  auto population = world().kb.LookupPredicate("population");
  ASSERT_TRUE(population.has_value());
  EXPECT_EQ(world().predicate_class.at(*population),
            nlp::QuestionClass::kNumeric);
  auto person = world().kb.LookupPredicate("person");
  ASSERT_TRUE(person.has_value());
  EXPECT_EQ(world().predicate_class.at(*person), nlp::QuestionClass::kHuman);
  // The name predicate is transparent — never labeled.
  EXPECT_EQ(world().predicate_class.count(world().kb.name_predicate()), 0u);
}

TEST_F(WorldTest, InfoboxCoversFamousFacts) {
  rdf::TermId honolulu = world().FamousByName("honolulu");
  ASSERT_NE(honolulu, rdf::kInvalidTerm);
  auto pop_lit = world().kb.LookupNode("390000");
  ASSERT_TRUE(pop_lit.has_value());
  EXPECT_TRUE(world().infobox.Contains(honolulu, *pop_lit));
  EXPECT_GT(world().infobox.num_facts(), world().infobox.num_subjects());
}

TEST_F(WorldTest, DeterministicAcrossRuns) {
  WorldConfig config;
  config.schema.scale = 0.02;
  World w1 = GenerateWorld(config);
  World w2 = GenerateWorld(config);
  EXPECT_EQ(w1.kb.num_triples(), w2.kb.num_triples());
  EXPECT_EQ(w1.kb.num_entities(), w2.kb.num_entities());
  // Spot-check a generated entity's name.
  int city = w1.schema.TypeIndex("city");
  rdf::TermId e1 = w1.entities_by_type[city].back();
  rdf::TermId e2 = w2.entities_by_type[city].back();
  EXPECT_EQ(w1.kb.EntityName(e1), w2.kb.EntityName(e2));
}

TEST_F(WorldTest, MissingRateCreatesIncompleteness) {
  WorldConfig config;
  config.schema.scale = 0.05;
  config.fact_missing_rate = 0.5;
  World sparse = GenerateWorld(config);
  WorldConfig full_config = config;
  full_config.fact_missing_rate = 0.0;
  World full = GenerateWorld(full_config);
  EXPECT_LT(sparse.kb.num_triples(), full.kb.num_triples());
}

// ---------- QA generation ----------

class QaGenTest : public WorldTest {
 protected:
  static const QaCorpus& corpus() {
    static const QaCorpus* const kCorpus = [] {
      QaGenConfig config;
      config.num_pairs = 2000;
      return new QaCorpus(GenerateTrainingCorpus(world(), config));
    }();
    return *kCorpus;
  }
};

TEST_F(QaGenTest, GeneratesRequestedCount) {
  EXPECT_EQ(corpus().size(), 2000u);
  EXPECT_EQ(corpus().gold.size(), 2000u);
}

TEST_F(QaGenTest, GoldAnswersAreConsistent) {
  size_t checked = 0;
  for (size_t i = 0; i < corpus().size(); ++i) {
    const QaGold& gold = corpus().gold[i];
    if (!gold.is_bfq) continue;
    // The question mentions the entity's name.
    std::string question = corpus().pairs[i].question;
    EXPECT_NE(question.find(world().kb.EntityName(gold.entity)),
              std::string::npos)
        << question;
    if (gold.answer_contains_value) {
      EXPECT_NE(corpus().pairs[i].answer.find(gold.value_string),
                std::string::npos)
          << corpus().pairs[i].answer << " / " << gold.value_string;
    }
    // The gold value really is a KB fact.
    const auto* values = world().FactValues(gold.intent, gold.entity);
    ASSERT_NE(values, nullptr);
    bool found = false;
    for (rdf::TermId v : *values) found = found || (v == gold.value);
    EXPECT_TRUE(found);
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST_F(QaGenTest, ChitchatFractionRoughlyHonored) {
  size_t chitchat = 0;
  for (const QaGold& gold : corpus().gold) {
    chitchat += (gold.kind == "chitchat");
  }
  double fraction = static_cast<double>(chitchat) / corpus().size();
  EXPECT_NEAR(fraction, 0.10, 0.04);
}

TEST_F(QaGenTest, TrainingUsesOnlyTrainingParaphrases) {
  for (size_t i = 0; i < corpus().size(); ++i) {
    const QaGold& gold = corpus().gold[i];
    if (!gold.is_bfq) continue;
    const IntentSpec& intent = world().schema.intents()[gold.intent];
    EXPECT_TRUE(intent.paraphrases[gold.paraphrase].train);
  }
}

TEST_F(QaGenTest, DeterministicForSeed) {
  QaGenConfig config;
  config.num_pairs = 50;
  QaCorpus a = GenerateTrainingCorpus(world(), config);
  QaCorpus b = GenerateTrainingCorpus(world(), config);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pairs[i].question, b.pairs[i].question);
    EXPECT_EQ(a.pairs[i].answer, b.pairs[i].answer);
  }
}

// ---------- Benchmark generation ----------

struct BenchmarkShape {
  size_t num_questions;
  double bfq_ratio;
};

class BenchmarkShapeTest : public ::testing::TestWithParam<BenchmarkShape> {};

TEST_P(BenchmarkShapeTest, RespectsShape) {
  WorldConfig wc;
  wc.schema.scale = 0.05;
  wc.schema.generic_attributes_per_type = 2;
  wc.schema.generic_relations_per_type = 1;
  World world = GenerateWorld(wc);
  BenchmarkConfig config;
  config.num_questions = GetParam().num_questions;
  config.bfq_ratio = GetParam().bfq_ratio;
  BenchmarkSet set = GenerateBenchmark(world, config);
  EXPECT_EQ(set.questions.size(), GetParam().num_questions);
  double ratio =
      static_cast<double>(set.num_bfq) / set.questions.size();
  EXPECT_NEAR(ratio, GetParam().bfq_ratio, 0.17);
  // Every BFQ has a non-empty gold value.
  for (size_t i = 0; i < set.questions.size(); ++i) {
    if (set.questions.gold[i].is_bfq) {
      EXPECT_FALSE(set.questions.gold[i].value_string.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BenchmarkShapeTest,
                         ::testing::Values(BenchmarkShape{50, 0.24},
                                           BenchmarkShape{99, 0.41},
                                           BenchmarkShape{50, 0.54},
                                           BenchmarkShape{200, 0.35}));

TEST_F(QaGenTest, BenchmarkIncludesUnseenParaphrases) {
  BenchmarkConfig config;
  config.num_questions = 150;
  config.bfq_ratio = 0.8;
  config.unseen_paraphrase_rate = 0.5;
  BenchmarkSet set = GenerateBenchmark(world(), config);
  size_t unseen = 0;
  for (const QaGold& gold : set.questions.gold) {
    unseen += gold.unseen_paraphrase;
  }
  EXPECT_GT(unseen, 10u);
}

TEST_F(QaGenTest, SuperlativeGoldIsArgmax) {
  BenchmarkConfig config;
  config.num_questions = 120;
  config.bfq_ratio = 0.0;  // non-BFQs only
  BenchmarkSet set = GenerateBenchmark(world(), config);
  size_t superlatives = 0;
  for (size_t i = 0; i < set.questions.size(); ++i) {
    const QaGold& gold = set.questions.gold[i];
    if (gold.kind != "superlative") continue;
    ++superlatives;
    EXPECT_FALSE(gold.value_string.empty());
    // The named winner exists in the KB under that name.
    EXPECT_FALSE(world().kb.EntitiesByName(gold.value_string).empty());
  }
  EXPECT_GT(superlatives, 5u);
}

// ---------- Web docs ----------

TEST_F(QaGenTest, WebDocsMentionFactsByKeyword) {
  std::vector<std::string> docs = GenerateWebDocs(world(), 500, 99);
  EXPECT_EQ(docs.size(), 500u);
  size_t with_is = 0;
  for (const std::string& doc : docs) {
    with_is += (doc.find(" is ") != std::string::npos ||
                doc.find(" was ") != std::string::npos);
  }
  // Statement frames dominate (80%).
  EXPECT_GT(with_is, 300u);
}

}  // namespace
}  // namespace kbqa::corpus
