#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/decomposer.h"
#include "nlp/pattern.h"
#include "nlp/tokenizer.h"

namespace kbqa::core {
namespace {

/// Decomposer fixture with a hand-built pattern index and a primitive-BFQ
/// probe defined by a string set.
class DecomposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<nlp::PatternQuestion> corpus;
    auto add = [&](const std::string& question, size_t mention_begin,
                   size_t mention_end) {
      nlp::PatternQuestion pq;
      pq.tokens = nlp::TokenizeQuestion(question);
      pq.mention_spans = {{mention_begin, mention_end}};
      corpus.push_back(std::move(pq));
    };
    // Corpus evidence for the outer patterns the DP must pick.
    add("when was michelle obama born", 2, 4);
    add("when was larry page born", 2, 4);
    add("how many people live in tokyo", 5, 6);
    add("how many people live in honolulu", 5, 6);
    add("what is the area of berlin", 4, 5);
    index_ = nlp::PatternIndex::Build(corpus);
  }

  ComplexDecomposer Make(std::set<std::string> primitives) {
    primitives_ = std::move(primitives);
    ComplexDecomposer::Options options;
    return ComplexDecomposer(
        &index_,
        [this](const std::vector<std::string>& tokens) {
          return primitives_.count(nlp::JoinTokens(tokens)) > 0;
        },
        options);
  }

  nlp::PatternIndex index_;
  std::set<std::string> primitives_;
};

TEST_F(DecomposerTest, TwoStepChain) {
  auto decomposer = Make({"barack obama s wife"});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("when was barack obama's wife born"));
  ASSERT_EQ(result.sequence.size(), 2u);
  EXPECT_EQ(result.sequence[0], "barack obama s wife");
  EXPECT_EQ(result.sequence[1], "when was $e born");
  EXPECT_GT(result.probability, 0.9);
}

TEST_F(DecomposerTest, CapitalChain) {
  auto decomposer = Make({"the capital of japan"});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("how many people live in the capital of japan"));
  ASSERT_EQ(result.sequence.size(), 2u);
  EXPECT_EQ(result.sequence[0], "the capital of japan");
  EXPECT_EQ(result.sequence[1], "how many people live in $e");
}

TEST_F(DecomposerTest, PrimitiveWholeQuestionWinsOutright) {
  auto decomposer = Make(
      {"when was barack obama s wife born", "barack obama s wife"});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("when was barack obama's wife born"));
  ASSERT_EQ(result.sequence.size(), 1u);
  EXPECT_DOUBLE_EQ(result.probability, 1.0);
}

TEST_F(DecomposerTest, NoPrimitiveNoDecomposition) {
  auto decomposer = Make({});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("when was barack obama's wife born"));
  EXPECT_TRUE(result.sequence.empty());
  EXPECT_DOUBLE_EQ(result.probability, 0.0);
}

TEST_F(DecomposerTest, InvalidOuterPatternBlocksChain) {
  // The primitive is answerable but no corpus pattern covers the remainder
  // ("what is the weight of $e" was never seen) => probability 0.
  auto decomposer = Make({"the capital of japan"});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("what is the weight of the capital of japan"));
  EXPECT_TRUE(result.sequence.empty());
}

TEST_F(DecomposerTest, EmptyInput) {
  auto decomposer = Make({"x y"});
  auto result = decomposer.Decompose({});
  EXPECT_TRUE(result.sequence.empty());
}

TEST_F(DecomposerTest, SingleWordIsNeverPrimitive) {
  // min_inner_tokens = 2 forbids one-word inner questions even when the
  // probe would accept them.
  auto decomposer = Make({"japan"});
  auto result =
      decomposer.Decompose(nlp::TokenizeQuestion("when was japan born"));
  EXPECT_TRUE(result.sequence.empty());
}

TEST_F(DecomposerTest, PrefersHigherProbabilityDecomposition) {
  // Both "the capital of japan" and "capital of japan" are primitive; the
  // outer patterns differ in corpus support. "how many people live in $e"
  // has fv=fo=2 => P=1; the alternative leaves "the" inside the pattern
  // ("how many people live in the $e"), which the corpus never validates.
  auto decomposer = Make({"the capital of japan", "capital of japan"});
  auto result = decomposer.Decompose(
      nlp::TokenizeQuestion("how many people live in the capital of japan"));
  ASSERT_EQ(result.sequence.size(), 2u);
  EXPECT_EQ(result.sequence[1], "how many people live in $e");
  EXPECT_EQ(result.sequence[0], "the capital of japan");
}

}  // namespace
}  // namespace kbqa::core
