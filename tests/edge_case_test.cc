// Edge-case coverage: untrained systems, empty/degenerate inputs, odd
// questions, option boundaries — behaviors a downstream user will hit.

#include <gtest/gtest.h>

#include <string>

#include "core/kbqa_system.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"

namespace kbqa {
namespace {

class EdgeCaseTest : public ::testing::Test {
 protected:
  static const corpus::World& world() {
    static const corpus::World* const kWorld = [] {
      corpus::WorldConfig config;
      config.schema.scale = 0.05;
      config.schema.generic_attributes_per_type = 2;
      config.schema.generic_relations_per_type = 2;
      return new corpus::World(corpus::GenerateWorld(config));
    }();
    return *kWorld;
  }
};

TEST_F(EdgeCaseTest, UntrainedSystemDeclinesEverything) {
  core::KbqaSystem kbqa(&world());
  EXPECT_FALSE(kbqa.trained());
  EXPECT_FALSE(kbqa.Answer("when was barack obama born").answered);
  EXPECT_FALSE(kbqa.AnswerComplex("when was barack obama's wife born")
                   .answer.answered);
  EXPECT_FALSE(kbqa.AnswerVariant("which city has the largest population")
                   .answered);
}

class TrainedEdgeCaseTest : public EdgeCaseTest {
 protected:
  static const core::KbqaSystem& kbqa() {
    static const core::KbqaSystem* const kSystem = [] {
      corpus::QaGenConfig config;
      config.num_pairs = 3000;
      auto* system = new core::KbqaSystem(&world());
      Status status =
          system->Train(corpus::GenerateTrainingCorpus(world(), config));
      if (!status.ok()) ADD_FAILURE() << status;
      return system;
    }();
    return *kSystem;
  }
};

TEST_F(TrainedEdgeCaseTest, DegenerateInputs) {
  EXPECT_FALSE(kbqa().Answer("").answered);
  EXPECT_FALSE(kbqa().Answer("    ").answered);
  EXPECT_FALSE(kbqa().Answer("?! ?!").answered);
  EXPECT_FALSE(kbqa().Answer("the the the the").answered);
  // Single entity name with no question around it: template is just the
  // category token; nothing learned for it.
  EXPECT_FALSE(kbqa().Answer("honolulu").answered);
}

TEST_F(TrainedEdgeCaseTest, VeryLongQuestionIsHandled) {
  std::string question = "when was barack obama born";
  for (int i = 0; i < 40; ++i) question += " and also maybe perhaps";
  // Far beyond the decomposer's 23-token horizon; must not crash and the
  // direct path must simply fail to match a template.
  core::ComplexAnswer answer = kbqa().AnswerComplex(question);
  (void)answer;  // Any outcome is fine as long as it terminates cleanly.
  SUCCEED();
}

TEST_F(TrainedEdgeCaseTest, CaseAndPunctuationInsensitive) {
  core::AnswerResult plain = kbqa().Answer("when was barack obama born");
  core::AnswerResult shouty = kbqa().Answer("When WAS Barack Obama BORN?!");
  ASSERT_TRUE(plain.answered);
  ASSERT_TRUE(shouty.answered);
  EXPECT_EQ(plain.value, shouty.value);
}

TEST_F(TrainedEdgeCaseTest, UnknownEntityDeclines) {
  EXPECT_FALSE(
      kbqa().Answer("when was zorblax the unpronounceable born").answered);
}

TEST_F(TrainedEdgeCaseTest, RepeatedEntityMention) {
  // The same mention twice: the template formed around either mention still
  // contains the other mention's surface text, so it was never learned —
  // the system must decline cleanly (strict template matching, the paper's
  // documented failure mode), never crash or hallucinate.
  core::AnswerResult result =
      kbqa().Answer("barack obama when was barack obama born");
  EXPECT_FALSE(result.answered);
  EXPECT_GE(result.num_entities, 2u);  // both mentions were considered
}

TEST_F(TrainedEdgeCaseTest, RankedListIsSortedByScore) {
  core::AnswerResult result =
      kbqa().Answer("how many people are there in honolulu");
  ASSERT_TRUE(result.answered);
  for (size_t i = 1; i < result.ranked.size(); ++i) {
    EXPECT_GE(result.ranked[i - 1].score, result.ranked[i].score);
  }
  EXPECT_EQ(result.ranked.front().score, result.score);
}

TEST_F(TrainedEdgeCaseTest, HybridFallsBackOnlyWhenPrimaryDeclines) {
  // A self-hybrid must behave exactly like the system itself.
  core::HybridSystem self_hybrid(&kbqa(), &kbqa());
  for (const char* q :
       {"when was barack obama born", "why is the sky blue"}) {
    EXPECT_EQ(self_hybrid.Answer(q).answered, kbqa().Answer(q).answered);
  }
  EXPECT_EQ(self_hybrid.name(), "KBQA+KBQA");
}

TEST_F(TrainedEdgeCaseTest, RetrainingResetsTheModel) {
  corpus::QaGenConfig config;
  config.num_pairs = 500;
  config.seed = 4242;
  core::KbqaSystem system(&world());
  ASSERT_TRUE(
      system.Train(corpus::GenerateTrainingCorpus(world(), config)).ok());
  size_t first = system.template_store().num_templates();
  // Second training run replaces (not accumulates) the learned artifact.
  ASSERT_TRUE(
      system.Train(corpus::GenerateTrainingCorpus(world(), config)).ok());
  EXPECT_EQ(system.template_store().num_templates(), first);
}

TEST_F(TrainedEdgeCaseTest, BenchmarkRunnerCountsDeclinesCorrectly) {
  corpus::BenchmarkConfig config;
  config.num_questions = 30;
  config.bfq_ratio = 0.0;  // all non-BFQs: KBQA declines most
  corpus::BenchmarkSet set = corpus::GenerateBenchmark(world(), config);
  eval::RunResult run = eval::RunBenchmark(kbqa(), set);
  EXPECT_EQ(run.counts.total, 30u);
  EXPECT_EQ(run.counts.bfq, 0u);
  EXPECT_LE(run.counts.pro, run.counts.total);
  EXPECT_EQ(run.judged.size(), 30u);
  EXPECT_EQ(run.bfq_only.total, 0u);
}

TEST_F(TrainedEdgeCaseTest, ExpansionSeedsComeFromCorpus) {
  // Every expansion seed must be a KB entity (the "reduction on s").
  for (rdf::TermId seed : kbqa().expansion_seeds()) {
    EXPECT_TRUE(world().kb.IsEntity(seed));
  }
  EXPECT_GT(kbqa().expansion_seeds().size(), 10u);
  EXPECT_LT(kbqa().expansion_seeds().size(), world().kb.num_entities());
}

TEST_F(TrainedEdgeCaseTest, DisabledComplexQuestionsStillAnswersBfqs) {
  core::KbqaOptions options;
  options.enable_complex_questions = false;
  corpus::QaGenConfig config;
  config.num_pairs = 3000;
  core::KbqaSystem system(&world(), options);
  ASSERT_TRUE(
      system.Train(corpus::GenerateTrainingCorpus(world(), config)).ok());
  EXPECT_EQ(system.pattern_index(), nullptr);
  EXPECT_TRUE(system.Answer("when was barack obama born").answered);
  // AnswerComplex degrades to direct answering.
  core::ComplexAnswer complex =
      system.AnswerComplex("when was barack obama born");
  EXPECT_TRUE(complex.answer.answered);
  EXPECT_EQ(complex.sequence.size(), 1u);
}

}  // namespace
}  // namespace kbqa
