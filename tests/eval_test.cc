#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/runner.h"

namespace kbqa::eval {
namespace {

TEST(MetricsTest, PaperDefinitions) {
  QaldCounts counts;
  counts.total = 50;
  counts.bfq = 12;
  counts.pro = 8;
  counts.ri = 5;
  counts.par = 1;
  EXPECT_DOUBLE_EQ(counts.P(), 5.0 / 8);
  EXPECT_DOUBLE_EQ(counts.PStar(), 6.0 / 8);
  EXPECT_DOUBLE_EQ(counts.R(), 5.0 / 50);
  EXPECT_DOUBLE_EQ(counts.RStar(), 6.0 / 50);
  EXPECT_DOUBLE_EQ(counts.RBfq(), 5.0 / 12);
  EXPECT_DOUBLE_EQ(counts.RStarBfq(), 6.0 / 12);
}

TEST(MetricsTest, ZeroSafe) {
  QaldCounts counts;
  EXPECT_DOUBLE_EQ(counts.P(), 0);
  EXPECT_DOUBLE_EQ(counts.R(), 0);
  EXPECT_DOUBLE_EQ(counts.F1(), 0);
  EXPECT_DOUBLE_EQ(counts.RBfq(), 0);
}

TEST(MetricsTest, F1Harmonic) {
  QaldCounts counts;
  counts.total = 10;
  counts.pro = 10;
  counts.ri = 5;
  // P = R = 0.5 -> F1 = 0.5.
  EXPECT_DOUBLE_EQ(counts.F1(), 0.5);
}

TEST(MetricsTest, Accumulation) {
  QaldCounts a, b;
  a.total = 10;
  a.ri = 2;
  b.total = 5;
  b.ri = 3;
  a += b;
  EXPECT_EQ(a.total, 15u);
  EXPECT_EQ(a.ri, 5u);
}

TEST(JudgeTest, RightPartialWrongDeclined) {
  corpus::QaGold gold;
  gold.value_string = "Mountain View";
  gold.partial_values = {"united states"};

  core::AnswerResult declined;
  EXPECT_EQ(Judge(declined, gold), Judgment::kDeclined);

  core::AnswerResult right;
  right.answered = true;
  right.value = "mountain view";  // case-insensitive normalized match
  EXPECT_EQ(Judge(right, gold), Judgment::kRight);

  core::AnswerResult partial;
  partial.answered = true;
  partial.value = "United States";
  EXPECT_EQ(Judge(partial, gold), Judgment::kPartial);

  core::AnswerResult wrong;
  wrong.answered = true;
  wrong.value = "tokyo";
  EXPECT_EQ(Judge(wrong, gold), Judgment::kWrong);
}

TEST(JudgeTest, EmptyGoldNeverRight) {
  corpus::QaGold gold;  // listing/opinion question: no gold value
  core::AnswerResult answer;
  answer.answered = true;
  answer.value = "anything";
  EXPECT_EQ(Judge(answer, gold), Judgment::kWrong);
}

}  // namespace
}  // namespace kbqa::eval
