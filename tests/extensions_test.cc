#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/kbqa_system.h"
#include "core/model_io.h"
#include "core/variants.h"
#include "eval/experiment.h"
#include "rdf/query.h"
#include "util/strings.h"

namespace kbqa {
namespace {

// ---------- SPARQL-lite query engine ----------

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::PredId name = kb_.AddPredicate("name");
    kb_.SetNamePredicate(name);
    rdf::PredId dob = kb_.AddPredicate("dob");
    rdf::PredId marriage = kb_.AddPredicate("marriage");
    rdf::PredId person = kb_.AddPredicate("person");

    rdf::TermId a = kb_.AddEntity("person/a");
    rdf::TermId b = kb_.AddEntity("marriage/b");
    rdf::TermId c = kb_.AddEntity("person/c");
    kb_.AddTriple(a, name, kb_.AddLiteral("barack obama"));
    kb_.AddTriple(a, dob, kb_.AddLiteral("1961"));
    kb_.AddTriple(a, marriage, b);
    kb_.AddTriple(b, person, c);
    kb_.AddTriple(c, name, kb_.AddLiteral("michelle obama"));
    kb_.AddTriple(c, dob, kb_.AddLiteral("1964"));
    kb_.Freeze();
  }

  rdf::KnowledgeBase kb_;
};

TEST_F(QueryTest, ParseRoundTrip) {
  std::string text =
      "SELECT ?wife WHERE { person/a marriage ?m . ?m person ?p . "
      "?p name ?wife }";
  auto query = rdf::ParseQuery(text);
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value().select, (std::vector<std::string>{"wife"}));
  EXPECT_EQ(query.value().where.size(), 3u);
  // Round trip through the serializer re-parses identically.
  auto again = rdf::ParseQuery(rdf::QueryToString(query.value()));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().where, query.value().where);
}

TEST_F(QueryTest, ParseQuotedLiteral) {
  auto query =
      rdf::ParseQuery("SELECT ?x WHERE { ?x name \"barack obama\" }");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value().where[0].object.text, "barack obama");
  EXPECT_FALSE(query.value().where[0].object.is_variable);
}

TEST_F(QueryTest, ParseErrors) {
  EXPECT_FALSE(rdf::ParseQuery("garbage").ok());
  EXPECT_FALSE(rdf::ParseQuery("SELECT x WHERE { a b c }").ok());
  EXPECT_FALSE(rdf::ParseQuery("SELECT ?x WHERE { a b }").ok());
  EXPECT_FALSE(rdf::ParseQuery("SELECT ?x WHERE { ?x ?p ?o }").ok());
  EXPECT_FALSE(rdf::ParseQuery("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(
      rdf::ParseQuery("SELECT ?x WHERE { ?x name \"unterminated }").ok());
}

TEST_F(QueryTest, ExecutesChainJoin) {
  auto query = rdf::ParseQuery(
      "SELECT ?wife WHERE { person/a marriage ?m . ?m person ?p . "
      "?p name ?wife }");
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(kb_, query.value());
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(kb_.NodeString(rows.value()[0][0]), "michelle obama");
}

TEST_F(QueryTest, ExecutesReverseLookup) {
  // Object bound, subject variable: who was born in 1964?
  auto query = rdf::ParseQuery("SELECT ?who WHERE { ?who dob 1964 }");
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(kb_, query.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(kb_.NodeString(rows.value()[0][0]), "person/c");
}

TEST_F(QueryTest, UnknownTermsYieldEmpty) {
  auto q1 = rdf::ParseQuery("SELECT ?x WHERE { nobody dob ?x }");
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(rdf::ExecuteQuery(kb_, q1.value()).value().empty());
  auto q2 = rdf::ParseQuery("SELECT ?x WHERE { person/a nopred ?x }");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(rdf::ExecuteQuery(kb_, q2.value()).value().empty());
}

TEST_F(QueryTest, PlannerAvoidsFullScansWhenPossible) {
  // Written in the worst order: the planner must start from the constant.
  auto query = rdf::ParseQuery(
      "SELECT ?wife WHERE { ?p name ?wife . ?m person ?p . "
      "person/a marriage ?m }");
  ASSERT_TRUE(query.ok());
  rdf::QueryStats stats;
  auto rows = rdf::ExecuteQuery(kb_, query.value(), &stats);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(kb_.NodeString(rows.value()[0][0]), "michelle obama");
  EXPECT_EQ(stats.full_scans, 0u);
}

TEST_F(QueryTest, MultiVariableSelect) {
  auto query = rdf::ParseQuery("SELECT ?p ?y WHERE { ?p dob ?y }");
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(kb_, query.value());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);  // obama and michelle
  for (const auto& row : rows.value()) EXPECT_EQ(row.size(), 2u);
}

TEST_F(QueryTest, BuildPathQueryMatchesManualQuery) {
  auto marriage = *kb_.LookupPredicate("marriage");
  auto person = *kb_.LookupPredicate("person");
  auto name = *kb_.LookupPredicate("name");
  auto entity = kb_.EntitiesByName("barack obama");
  ASSERT_EQ(entity.size(), 1u);
  rdf::Query query =
      rdf::BuildPathQuery(kb_, entity[0], {marriage, person, name});
  auto rows = rdf::ExecuteQuery(kb_, query);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(kb_.NodeString(rows.value()[0][0]), "michelle obama");
}

TEST_F(QueryTest, SelfLoopPatternEnforcesEquality) {
  // Regression: "?x p ?x" must bind one variable with an equality
  // constraint, not two independent ones (caught by the brute-force
  // equivalence property test).
  rdf::KnowledgeBase kb;
  rdf::PredId knows = kb.AddPredicate("knows");
  rdf::TermId a = kb.AddEntity("a");
  rdf::TermId b = kb.AddEntity("b");
  kb.AddTriple(a, knows, a);  // reflexive
  kb.AddTriple(a, knows, b);  // not reflexive
  kb.Freeze();
  auto query = rdf::ParseQuery("SELECT ?x WHERE { ?x knows ?x }");
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(kb, query.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0], a);
}

TEST_F(QueryTest, RequiresFrozenKb) {
  rdf::KnowledgeBase kb;
  kb.AddPredicate("p");
  auto query = rdf::ParseQuery("SELECT ?x WHERE { ?x p ?y }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(rdf::ExecuteQuery(kb, query.value()).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------- Shared trained experiment for extension features ----------

class ExtensionsTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

// ---------- SPARQL emission from the online procedure ----------

TEST_F(ExtensionsTest, AnswerCarriesExecutableSparql) {
  core::AnswerResult answer =
      experiment().kbqa().Answer("who is the wife of barack obama");
  ASSERT_TRUE(answer.answered);
  ASSERT_FALSE(answer.sparql.empty());
  auto query = rdf::ParseQuery(answer.sparql);
  ASSERT_TRUE(query.ok()) << answer.sparql;
  auto rows = rdf::ExecuteQuery(experiment().world().kb, query.value());
  ASSERT_TRUE(rows.ok());
  bool found = false;
  for (const auto& row : rows.value()) {
    found = found ||
            experiment().world().kb.NodeString(row[0]) == answer.value;
  }
  EXPECT_TRUE(found) << "the emitted query must return the answered value";
}

// ---------- Model persistence ----------

TEST_F(ExtensionsTest, ModelSaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/kbqa_model.bin";
  ASSERT_TRUE(experiment().kbqa().SaveModel(path).ok());

  core::KbqaSystem restored(&experiment().world());
  EXPECT_FALSE(restored.trained());
  ASSERT_TRUE(restored.LoadModel(path).ok());
  EXPECT_TRUE(restored.trained());
  EXPECT_EQ(restored.template_store().num_templates(),
            experiment().kbqa().template_store().num_templates());

  for (const char* q : {"what is the population of honolulu",
                        "who is the wife of barack obama",
                        "what is the capital of japan"}) {
    EXPECT_EQ(restored.Answer(q).value, experiment().kbqa().Answer(q).value)
        << q;
  }
  std::remove(path.c_str());
}

TEST_F(ExtensionsTest, LoadModelRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage_model.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a model", f);
  std::fclose(f);
  core::KbqaSystem restored(&experiment().world());
  Status status = restored.LoadModel(path);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_FALSE(restored.trained());
  std::remove(path.c_str());
}

TEST_F(ExtensionsTest, SaveModelRequiresTraining) {
  core::KbqaSystem fresh(&experiment().world());
  EXPECT_EQ(fresh.SaveModel("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
}

// ---------- Question variants (§1) ----------

TEST(OrdinalTest, ParsesWordsAndSuffixes) {
  EXPECT_EQ(core::ParseOrdinal("first"), 1);
  EXPECT_EQ(core::ParseOrdinal("third"), 3);
  EXPECT_EQ(core::ParseOrdinal("1st"), 1);
  EXPECT_EQ(core::ParseOrdinal("2nd"), 2);
  EXPECT_EQ(core::ParseOrdinal("3rd"), 3);
  EXPECT_EQ(core::ParseOrdinal("12th"), 12);
  EXPECT_EQ(core::ParseOrdinal("fast"), 0);
  EXPECT_EQ(core::ParseOrdinal("3"), 0);
  EXPECT_EQ(core::ParseOrdinal("3x"), 0);
}

TEST_F(ExtensionsTest, SuperlativeVariantUsesLearnedTemplates) {
  // The phrasing "people" never names the predicate ("population") — only
  // the learned template "how many people are there in $city" connects
  // them, which is the point of the extension.
  core::AnswerResult result = experiment().kbqa().AnswerVariant(
      "which city has the largest population");
  ASSERT_TRUE(result.answered);

  // Verify against a direct scan of the world's gold facts.
  const corpus::World& world = experiment().world();
  int intent = world.schema.IntentIndex("city.population");
  long long best = -1;
  rdf::TermId best_e = rdf::kInvalidTerm;
  for (rdf::TermId e :
       world.entities_by_type[world.schema.TypeIndex("city")]) {
    const auto* values = world.FactValues(intent, e);
    if (values == nullptr || values->empty()) continue;
    long long v = ParseNonNegativeInt(world.ValueSurface((*values)[0]));
    if (v > best) {
      best = v;
      best_e = e;
    }
  }
  EXPECT_EQ(result.value, world.kb.EntityName(best_e));
}

TEST_F(ExtensionsTest, KthLargestVariant) {
  core::AnswerResult first = experiment().kbqa().AnswerVariant(
      "which city has the largest population");
  core::AnswerResult second = experiment().kbqa().AnswerVariant(
      "which city has the 2nd largest population");
  ASSERT_TRUE(first.answered);
  ASSERT_TRUE(second.answered);
  EXPECT_NE(first.value, second.value);
}

TEST_F(ExtensionsTest, ComparisonVariant) {
  // Tokyo (13.96M) vs Honolulu (390K).
  core::AnswerResult result = experiment().kbqa().AnswerVariant(
      "which has more people , honolulu or tokyo");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "tokyo");
  core::AnswerResult less = experiment().kbqa().AnswerVariant(
      "which has less people , honolulu or tokyo");
  ASSERT_TRUE(less.answered);
  EXPECT_EQ(less.value, "honolulu");
}

TEST_F(ExtensionsTest, ListingVariant) {
  core::AnswerResult result = experiment().kbqa().AnswerVariant(
      "list cities ordered by population");
  ASSERT_TRUE(result.answered);
  // The largest city leads the list.
  core::AnswerResult top = experiment().kbqa().AnswerVariant(
      "which city has the largest population");
  EXPECT_TRUE(result.value.rfind(top.value, 0) == 0)
      << result.value << " should start with " << top.value;
}

TEST_F(ExtensionsTest, VariantDeclinesNonVariantQuestions) {
  EXPECT_FALSE(
      experiment().kbqa().AnswerVariant("when was barack obama born")
          .answered);
  EXPECT_FALSE(experiment().kbqa().AnswerVariant("hello there").answered);
  EXPECT_FALSE(experiment()
                   .kbqa()
                   .AnswerVariant("which dragon has the largest hoard")
                   .answered);
}

}  // namespace
}  // namespace kbqa
