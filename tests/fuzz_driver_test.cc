// Deterministic fuzzing substrate (fuzz/fuzz_driver.h): the mutation
// engine must be a pure function of (seed, corpus, dict, index) —
// bit-identical across runs, threads, and call order — and the fork-based
// crash check / minimizer must find and shrink a crashing input.

#include "fuzz/fuzz_driver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace kbqa::fuzz {

// This binary links the driver library, which expects the fuzz target's
// hooks at link time. The test target traps on any input containing the
// byte 0xEE — a planted bug with a one-byte reproducer, exercised through
// the same fork/minimize machinery the real targets use.
std::vector<std::string> SeedInputs() { return {"seed-aaaa", "seed-bbbb"}; }
std::vector<std::string> Dictionary() { return {"MAGIC", "\xff\x00"}; }

}  // namespace kbqa::fuzz

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    if (data[i] == 0xEE) __builtin_trap();
  }
  return 0;
}

namespace kbqa::fuzz {
namespace {

const std::vector<std::string>& Corpus() {
  static const auto* corpus = new std::vector<std::string>{
      "the quick brown fox", std::string(64, 'A'),
      std::string("\x01\x02\x03\x7f\x80\xff", 6)};
  return *corpus;
}

TEST(MutatorTest, GenerateIsDeterministicAcrossInstancesAndOrder) {
  const Mutator a(42);
  const Mutator b(42);
  constexpr uint64_t kN = 500;
  std::vector<std::string> forward(kN);
  for (uint64_t i = 0; i < kN; ++i) {
    forward[i] = a.Generate(Corpus(), Dictionary(), i);
  }
  // Same seed, reverse order, separate instance: bit-identical outputs.
  for (uint64_t i = kN; i-- > 0;) {
    ASSERT_EQ(b.Generate(Corpus(), Dictionary(), i), forward[i])
        << "index " << i;
  }
  // A different seed must actually change the stream (not a fixed PRNG).
  const Mutator c(43);
  size_t diff = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    if (c.Generate(Corpus(), Dictionary(), i) != forward[i]) ++diff;
  }
  EXPECT_GT(diff, kN / 2);
}

TEST(MutatorTest, GenerateIsDeterministicAcrossThreads) {
  const Mutator m(7);
  constexpr uint64_t kN = 256;
  std::vector<std::string> serial(kN);
  for (uint64_t i = 0; i < kN; ++i) {
    serial[i] = m.Generate(Corpus(), Dictionary(), i);
  }
  constexpr int kThreads = 4;
  std::vector<std::vector<std::string>> per_thread(
      kThreads, std::vector<std::string>(kN));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread walks the index space in a different stride order
        // (odd strides are coprime with kN, so every index is covered).
        for (uint64_t k = 0; k < kN; ++k) {
          const uint64_t i = (k * (2 * t + 1)) % kN;
          per_thread[t][i] = m.Generate(Corpus(), Dictionary(), i);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(per_thread[t][i], serial[i]) << "thread " << t << " i " << i;
    }
  }
}

TEST(MutatorTest, RespectsMaxLen) {
  const Mutator m(99, /*max_len=*/48);
  for (uint64_t i = 0; i < 2000; ++i) {
    EXPECT_LE(m.Generate(Corpus(), Dictionary(), i).size(), 48u) << i;
  }
}

TEST(ScratchFileTest, RoundTripsBytesAndUnlinksOnDestruction) {
  const std::string payload("\x00\x01scratch\xff", 10);
  std::string path;
  {
    ScratchFile scratch(reinterpret_cast<const uint8_t*>(payload.data()),
                        payload.size());
    path = scratch.path();
    ASSERT_FALSE(path.empty());
    std::ifstream in(path, std::ios::binary);
    const std::string read_back((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
    EXPECT_EQ(read_back, payload);
  }
  std::ifstream gone(path, std::ios::binary);
  EXPECT_FALSE(gone.good()) << path << " should be unlinked";
}

TEST(CrashMachineryTest, ForkDetectsTrapAndCleanRun) {
  EXPECT_TRUE(RunCrashesInFork(std::string("ab\xee")));
  EXPECT_FALSE(RunCrashesInFork("clean input"));
}

TEST(CrashMachineryTest, MinimizeShrinksToTheFaultingByte) {
  std::string noisy = "prefix-prefix-prefix";
  noisy += '\xee';
  noisy += "suffix-suffix-suffix";
  const std::string minimized = MinimizeCrash(noisy);
  EXPECT_TRUE(RunCrashesInFork(minimized));
  EXPECT_LT(minimized.size(), noisy.size());
  EXPECT_NE(minimized.find('\xee'), std::string::npos);
}

}  // namespace
}  // namespace kbqa::fuzz
