#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"

namespace kbqa::eval {
namespace {

/// One shared small experiment for the whole file (training once keeps the
/// suite fast); individual tests only read from it.
class IntegrationTest : public ::testing::Test {
 protected:
  static const Experiment& experiment() {
    static const Experiment* const kExperiment = [] {
      auto built = Experiment::Build(ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << "experiment build failed: " << built.status();
        return static_cast<Experiment*>(nullptr);
      }
      return const_cast<Experiment*>(std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

TEST_F(IntegrationTest, TrainingProducedTemplatesAndPredicates) {
  const auto& stats = experiment().kbqa().em_stats();
  EXPECT_GT(stats.num_observations, 500u);
  EXPECT_GT(stats.num_templates, 50u);
  EXPECT_GT(stats.num_predicates, 10u);
  EXPECT_GT(stats.iterations, 0);
}

TEST_F(IntegrationTest, EmLikelihoodMonotone) {
  const auto& ll = experiment().kbqa().em_stats().log_likelihood;
  ASSERT_GE(ll.size(), 2u);
  for (size_t i = 1; i < ll.size(); ++i) {
    EXPECT_GE(ll[i], ll[i - 1] - 1e-6);
  }
}

TEST_F(IntegrationTest, AnswersPaperRunningExamples) {
  const auto& kbqa = experiment().kbqa();
  // Table 1 of the paper, over the famous seed entities.
  struct Case {
    const char* question;
    const char* answer;
  };
  for (const Case& c : {
           Case{"how many people are there in honolulu", "390000"},
           Case{"what is the population of honolulu", "390000"},
           Case{"when was barack obama born", "1961"},
           Case{"who is the wife of barack obama", "michelle obama"},
           Case{"what is the capital of japan", "tokyo"},
       }) {
    core::AnswerResult result = kbqa.Answer(c.question);
    EXPECT_TRUE(result.answered) << c.question;
    EXPECT_EQ(result.value, c.answer) << c.question;
  }
}

TEST_F(IntegrationTest, AnswersComplexQuestions) {
  const auto& kbqa = experiment().kbqa();
  core::ComplexAnswer wife_dob =
      kbqa.AnswerComplex("when was barack obama's wife born");
  EXPECT_TRUE(wife_dob.answer.answered);
  EXPECT_EQ(wife_dob.answer.value, "1964");
  EXPECT_GE(wife_dob.sequence.size(), 2u);

  core::ComplexAnswer capital_pop =
      kbqa.AnswerComplex("how many people live in the capital of japan");
  EXPECT_TRUE(capital_pop.answer.answered);
  EXPECT_EQ(capital_pop.answer.value, "13960000");
}

TEST_F(IntegrationTest, DeclinesNonBfqQuestions) {
  const auto& kbqa = experiment().kbqa();
  EXPECT_FALSE(kbqa.Answer("why is tokyo so popular").answered);
  EXPECT_FALSE(kbqa.Answer("list all citys ordered by population").answered);
  EXPECT_FALSE(kbqa.Answer("hello there general").answered);
}

TEST_F(IntegrationTest, QaldPrecisionAndRecallShape) {
  // The paper's signature: KBQA has high precision and bounded recall on
  // mixed benchmarks (recall limited by the non-BFQ share).
  corpus::BenchmarkSet qald = experiment().MakeQald3();
  RunResult run = RunBenchmark(experiment().kbqa(), qald);
  EXPECT_GT(run.counts.P(), 0.6) << "precision over answered";
  EXPECT_GT(run.counts.RBfq(), 0.35) << "recall over BFQs";
  EXPECT_LT(run.counts.R(), run.counts.RBfq())
      << "non-BFQs must cap overall recall";
}

TEST_F(IntegrationTest, KbqaBeatsSynonymBaselineOnBfqPrecision) {
  corpus::BenchmarkSet qald = experiment().MakeQald1();
  RunResult kbqa_run = RunBenchmark(experiment().kbqa(), qald);
  RunResult synonym_run = RunBenchmark(experiment().synonym_qa(), qald);
  // Table 9's shape: template-based beats synonym-based on both P and R.
  EXPECT_GT(kbqa_run.counts.P(), synonym_run.counts.P() - 0.05);
  EXPECT_GT(kbqa_run.counts.RBfq(), synonym_run.counts.RBfq());
}

TEST_F(IntegrationTest, HybridImprovesRecallOverBothParts) {
  corpus::BenchmarkSet qald = experiment().MakeQald3();
  const auto& kbqa = experiment().kbqa();
  const auto& keyword = experiment().keyword_qa();
  core::HybridSystem hybrid(&kbqa, &keyword);

  RunResult kbqa_run = RunBenchmark(kbqa, qald);
  RunResult keyword_run = RunBenchmark(keyword, qald);
  RunResult hybrid_run = RunBenchmark(hybrid, qald);

  // Table 11's shape: the hybrid recalls at least as much as either part.
  EXPECT_GE(hybrid_run.counts.R(), kbqa_run.counts.R());
  EXPECT_GE(hybrid_run.counts.R(), keyword_run.counts.R());
  EXPECT_GT(hybrid_run.counts.R(),
            std::max(kbqa_run.counts.R(), keyword_run.counts.R()) - 1e-9);
}

TEST_F(IntegrationTest, UnseenParaphrasesReduceButDontKillRecall) {
  corpus::BenchmarkConfig config;
  config.num_questions = 120;
  config.bfq_ratio = 1.0;
  config.unseen_paraphrase_rate = 0.0;
  config.seed = 5150;
  corpus::BenchmarkSet seen =
      corpus::GenerateBenchmark(experiment().world(), config);
  config.unseen_paraphrase_rate = 1.0;
  config.seed = 5151;
  corpus::BenchmarkSet unseen =
      corpus::GenerateBenchmark(experiment().world(), config);

  RunResult seen_run = RunBenchmark(experiment().kbqa(), seen);
  RunResult unseen_run = RunBenchmark(experiment().kbqa(), unseen);
  EXPECT_GT(seen_run.counts.R(), unseen_run.counts.R());
  EXPECT_GT(seen_run.counts.R(), 0.5);
}

TEST_F(IntegrationTest, ExpansionCoversCvtIntents) {
  const auto& ekb = experiment().kbqa().expanded_kb();
  EXPECT_GT(ekb.NumTriplesOfLength(2), 0u);
  EXPECT_GT(ekb.NumTriplesOfLength(3), 0u);
  // Expanded (2..3) predicates outnumber direct ones learned — the paper's
  // Table 16 direction.
  EXPECT_GT(ekb.NumPathsOfLength(2) + ekb.NumPathsOfLength(3), 0u);
}

TEST_F(IntegrationTest, MultiValuedAnswerSetIsComplete) {
  core::AnswerResult result =
      experiment().kbqa().Answer("who are the members of coldplay");
  ASSERT_TRUE(result.answered);
  // Both wired members appear in the answer set; `value` is one of them.
  ASSERT_EQ(result.values.size(), 2u);
  std::vector<std::string> values = result.values;
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values[0], "chris martin");
  EXPECT_EQ(values[1], "jonny buckland");
  EXPECT_TRUE(result.value == "chris martin" ||
              result.value == "jonny buckland");
}

TEST_F(IntegrationTest, AliasMentionAnswers) {
  // Find an aliased entity with a dob fact and ask via the alias.
  const corpus::World& world = experiment().world();
  auto alias = world.kb.LookupPredicate("alias");
  ASSERT_TRUE(alias.has_value());
  int dob = world.schema.IntentIndex("person.dob");
  for (rdf::TermId e :
       world.entities_by_type[world.schema.TypeIndex("person")]) {
    auto range = world.kb.ObjectsRange(e, *alias);
    if (range.empty()) continue;
    const auto* values = world.FactValues(dob, e);
    if (values == nullptr || values->empty()) continue;
    std::string alias_text = world.kb.NodeString(range.front().o);
    // The alias must name exactly this entity for an unambiguous check.
    if (experiment().kbqa().ner().EntitiesForSpan({alias_text}, 0, 1).size() !=
        1) {
      continue;
    }
    core::AnswerResult result =
        experiment().kbqa().Answer("when was " + alias_text + " born");
    if (!result.answered) continue;  // tolerate template gaps
    EXPECT_EQ(result.value, world.ValueSurface((*values)[0]));
    return;
  }
  GTEST_SKIP() << "no unambiguous aliased person with dob in small world";
}

TEST_F(IntegrationTest, AnswerDiagnosticsPopulated) {
  core::AnswerResult result =
      experiment().kbqa().Answer("what is the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_GE(result.num_entities, 1u);
  EXPECT_GE(result.num_templates, 1u);
  EXPECT_GE(result.num_predicates, 1u);
  EXPECT_GE(result.num_values, 1u);
  EXPECT_FALSE(result.ranked.empty());
}

TEST_F(IntegrationTest, DeterministicAnswers) {
  auto built = Experiment::Build(ExperimentConfig::Small());
  ASSERT_TRUE(built.ok());
  const Experiment& other = *built.value();
  for (const char* q :
       {"what is the population of honolulu", "who is the wife of barack obama",
        "what is the capital of germany"}) {
    EXPECT_EQ(experiment().kbqa().Answer(q).value, other.kbqa().Answer(q).value)
        << q;
  }
  EXPECT_EQ(experiment().kbqa().template_store().num_templates(),
            other.kbqa().template_store().num_templates());
}

TEST_F(IntegrationTest, PolysemousNameIsDisambiguatedByContext) {
  // Find a fruit/company shared name and ask a fruit-sense question vs a
  // company-sense question.
  const corpus::World& world = experiment().world();
  int fruit = world.schema.TypeIndex("fruit");
  int company = world.schema.TypeIndex("company");
  int calories = world.schema.IntentIndex("fruit.calories");
  int employees = world.schema.IntentIndex("company.employees");
  ASSERT_GE(calories, 0);
  ASSERT_GE(employees, 0);

  for (rdf::TermId f : world.entities_by_type[fruit]) {
    std::string name = world.kb.EntityName(f);
    auto shared = world.kb.EntitiesByName(name);
    if (shared.size() < 2) continue;
    rdf::TermId co = rdf::kInvalidTerm;
    for (rdf::TermId e : shared) {
      for (rdf::TermId c : world.entities_by_type[company]) {
        if (e == c) co = c;
      }
    }
    if (co == rdf::kInvalidTerm) continue;
    const auto* fruit_fact = world.FactValues(calories, f);
    const auto* company_fact = world.FactValues(employees, co);
    if (fruit_fact == nullptr || company_fact == nullptr) continue;

    core::AnswerResult fruit_answer = experiment().kbqa().Answer(
        "how many calories are in " + name);
    core::AnswerResult company_answer = experiment().kbqa().Answer(
        "how many employees does " + name + " have");
    if (!fruit_answer.answered || !company_answer.answered) continue;
    EXPECT_EQ(fruit_answer.value, world.ValueSurface((*fruit_fact)[0]));
    EXPECT_EQ(company_answer.value, world.ValueSurface((*company_fact)[0]));
    return;  // One fully-checked polysemous pair is enough.
  }
  GTEST_SKIP() << "no fully-faceted polysemous pair in this small world";
}

}  // namespace
}  // namespace kbqa::eval
