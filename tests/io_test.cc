#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "corpus/corpus_io.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "rdf/ntriples.h"
#include "util/rng.h"

namespace kbqa {
namespace {

// ---------- N-Triples ----------

TEST(NTriplesTest, ParseLineForms) {
  auto literal = rdf::ParseNTripleLine(
      "<person/a> <name> \"barack obama\" .");
  ASSERT_TRUE(literal.ok()) << literal.status();
  EXPECT_EQ(literal.value().subject, "person/a");
  EXPECT_EQ(literal.value().predicate, "name");
  EXPECT_EQ(literal.value().object, "barack obama");
  EXPECT_TRUE(literal.value().object_is_literal);

  auto entity = rdf::ParseNTripleLine("<person/a> <pob> <city/d> .");
  ASSERT_TRUE(entity.ok());
  EXPECT_FALSE(entity.value().object_is_literal);
  EXPECT_EQ(entity.value().object, "city/d");
}

TEST(NTriplesTest, ParseEscapes) {
  auto parsed = rdf::ParseNTripleLine(
      "<a> <says> \"line\\none \\\"two\\\" tab\\t back\\\\slash\" .");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().object, "line\none \"two\" tab\t back\\slash");
}

TEST(NTriplesTest, ParseErrors) {
  EXPECT_FALSE(rdf::ParseNTripleLine("garbage").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b>").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> <c>").ok());       // no dot
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"x .").ok());     // unterminated
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> <c> . extra").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<> <b> <c> .").ok());      // empty IRI
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"x\\q\" .").ok());  // bad esc
}

TEST(NTriplesTest, FormatParseRoundTrip) {
  rdf::NTriple triple{"person/a", "quote", "he said \"hi\"\tthen left\n",
                      true};
  auto parsed = rdf::ParseNTripleLine(rdf::FormatNTripleLine(triple));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().subject, triple.subject);
  EXPECT_EQ(parsed.value().object, triple.object);
  EXPECT_TRUE(parsed.value().object_is_literal);
}

TEST(NTriplesTest, ParseCarriageReturnAndNumericEscapes) {
  auto parsed = rdf::ParseNTripleLine(
      "<a> <says> \"cr\\rlf\\n u\\u0041 wide\\u00e9 astral\\U0001F600\" .");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().object,
            "cr\rlf\n uA wide\xc3\xa9 astral\xf0\x9f\x98\x80");
}

TEST(NTriplesTest, NumericEscapeErrors) {
  // Short hex runs, non-hex digits, surrogates, and out-of-range code
  // points are all rejected, not silently mangled.
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"\\u12\" .").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"\\uZZZZ\" .").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"\\U0001F60\" .").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"\\uD800\" .").ok());
  EXPECT_FALSE(rdf::ParseNTripleLine("<a> <b> \"\\U00110000\" .").ok());
}

TEST(NTriplesTest, CarriageReturnLiteralRoundTrips) {
  // A CR inside a literal must be emitted as \r on export — a raw CR would
  // split the line (or leak into a CRLF terminator) and break re-import.
  rdf::NTriple triple{"a", "says", "line one\r\nline two\r", true};
  const std::string line = rdf::FormatNTripleLine(triple);
  EXPECT_EQ(line.find('\r'), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = rdf::ParseNTripleLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().object, triple.object);
}

TEST(NTriplesTest, EscapeRoundTripProperty) {
  // Random literals over a hostile alphabet — quotes, CR/LF/tab,
  // backslashes, pre-encoded multi-byte UTF-8 — must survive format →
  // parse bit-exactly.
  const std::vector<std::string> alphabet = {
      "a",    "Z",    " ",          "\"",         "\\",         "\n",
      "\r",   "\t",   "\xc3\xa9",   "\xe6\xbc\xa2", "\xf0\x9f\x98\x80",
      "\\n",  ".",    "<",          ">"};
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::string object;
    const size_t len = rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      object += alphabet[rng.Uniform(alphabet.size())];
    }
    rdf::NTriple triple{"s", "p", object, true};
    auto parsed = rdf::ParseNTripleLine(rdf::FormatNTripleLine(triple));
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " object: " << object;
    EXPECT_EQ(parsed.value().object, object);
    EXPECT_TRUE(parsed.value().object_is_literal);
  }
}

TEST(NTriplesTest, CrlfTerminatedInputParsesWithoutLeakingCr) {
  // Parse a single CRLF-terminated line (getline leaves the \r in place).
  auto parsed = rdf::ParseNTripleLine("<s> <name> \"honolulu\" .\r");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().object, "honolulu");

  // And a whole CRLF file: no \r may leak into IRIs or literals.
  std::string path = ::testing::TempDir() + "/crlf.nt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("# CRLF export\r\n", f);
  std::fputs("<person/a> <name> \"barack obama\" .\r\n", f);
  std::fputs("<person/a> <pob> <city/d> .\r\n", f);
  std::fputs("<city/d> <name> \"honolulu\" .\r\n", f);
  std::fclose(f);
  auto imported = rdf::ImportNTriples(path, "name");
  ASSERT_TRUE(imported.ok()) << imported.status();
  const rdf::KnowledgeBase& kb = imported.value();
  EXPECT_EQ(kb.num_triples(), 3u);
  ASSERT_EQ(kb.EntitiesByName("honolulu").size(), 1u);
  for (rdf::TermId id = 0; id < kb.num_nodes(); ++id) {
    EXPECT_EQ(kb.NodeString(id).find('\r'), std::string::npos)
        << "CR leaked into node " << id;
  }
  std::remove(path.c_str());
}

TEST(NTriplesTest, ExportImportRoundTripsAWorld) {
  corpus::WorldConfig config;
  config.schema.scale = 0.02;
  corpus::World world = corpus::GenerateWorld(config);
  std::string path = ::testing::TempDir() + "/world.nt";
  ASSERT_TRUE(rdf::ExportNTriples(world.kb, path).ok());

  auto imported = rdf::ImportNTriples(path);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(imported.value().num_triples(), world.kb.num_triples());
  EXPECT_EQ(imported.value().num_predicates(), world.kb.num_predicates());
  // Name index survives (name predicate rebound on import).
  auto honolulu = imported.value().EntitiesByName("honolulu");
  EXPECT_EQ(honolulu.size(), world.kb.EntitiesByName("honolulu").size());
  std::remove(path.c_str());
}

TEST(NTriplesTest, ImportRejectsMalformedFile) {
  std::string path = ::testing::TempDir() + "/bad.nt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("# comment ok\n<a> <b> garbage\n", f);
  std::fclose(f);
  auto imported = rdf::ImportNTriples(path);
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(NTriplesTest, ImportMissingFileIsIoError) {
  EXPECT_EQ(rdf::ImportNTriples("/no/such/file.nt").status().code(),
            StatusCode::kIoError);
}

// ---------- QA corpus TSV ----------

TEST(CorpusIoTest, EscapingRoundTrips) {
  std::string nasty = "a\tb\nc\\d";
  EXPECT_EQ(corpus::UnescapeTsvField(corpus::EscapeTsvField(nasty)), nasty);
  EXPECT_EQ(corpus::EscapeTsvField("plain"), "plain");
}

TEST(CorpusIoTest, ExportImportRoundTrip) {
  corpus::QaCorpus original;
  original.pairs.push_back({"when was barack obama born",
                            "it 's 1961 .\nreally\tit is ."});
  original.pairs.push_back({"what is the capital of japan", "tokyo ."});
  original.gold.resize(2);

  std::string path = ::testing::TempDir() + "/corpus.tsv";
  ASSERT_TRUE(corpus::ExportQaTsv(original, path).ok());
  auto imported = corpus::ImportQaTsv(path);
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_EQ(imported.value().size(), 2u);
  EXPECT_EQ(imported.value().pairs[0].question, original.pairs[0].question);
  EXPECT_EQ(imported.value().pairs[0].answer, original.pairs[0].answer);
  EXPECT_FALSE(imported.value().gold[0].is_bfq);  // no gold on import
  std::remove(path.c_str());
}

TEST(CorpusIoTest, ImportedCorpusTrainsTheSystem) {
  // Full circle: generate -> export -> import (losing gold) -> train.
  corpus::WorldConfig wc;
  wc.schema.scale = 0.03;
  wc.schema.generic_attributes_per_type = 1;
  wc.schema.generic_relations_per_type = 1;
  corpus::World world = corpus::GenerateWorld(wc);
  corpus::QaGenConfig qc;
  qc.num_pairs = 1500;
  corpus::QaCorpus generated = corpus::GenerateTrainingCorpus(world, qc);

  std::string path = ::testing::TempDir() + "/train.tsv";
  ASSERT_TRUE(corpus::ExportQaTsv(generated, path).ok());
  auto imported = corpus::ImportQaTsv(path);
  ASSERT_TRUE(imported.ok());

  core::KbqaSystem kbqa(&world);
  ASSERT_TRUE(kbqa.Train(imported.value()).ok());
  EXPECT_TRUE(kbqa.Answer("when was barack obama born").answered);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, ImportRejectsMalformedLines) {
  std::string path = ::testing::TempDir() + "/bad.tsv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("question without answer\n", f);
  std::fclose(f);
  EXPECT_FALSE(corpus::ImportQaTsv(path).ok());
  std::remove(path.c_str());
}

// ---------- Evaluation report ----------

TEST(ReportTest, BreaksDownByKindAndParaphrase) {
  auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
  ASSERT_TRUE(built.ok());
  corpus::BenchmarkConfig config;
  config.num_questions = 120;
  config.bfq_ratio = 0.6;
  config.unseen_paraphrase_rate = 0.4;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(built.value()->world(), config);
  eval::RunResult run = eval::RunBenchmark(built.value()->kbqa(), set);
  eval::EvaluationReport report = eval::EvaluationReport::Build(run);

  // Kinds partition the questions.
  size_t total = 0;
  for (const auto& [kind, counts] : report.by_kind()) {
    (void)kind;
    total += counts.total;
  }
  EXPECT_EQ(total, 120u);
  EXPECT_GT(report.by_kind().count("bfq"), 0u);

  // Seen phrasings recall at least as well as held-out ones.
  EXPECT_GT(report.num_seen_bfq() + report.num_unseen_bfq(), 0u);
  EXPECT_GE(report.seen_recall(), report.unseen_recall());

  // Latency percentiles are ordered.
  EXPECT_LE(report.latency_p50_ms(), report.latency_p95_ms());
  EXPECT_LE(report.latency_p95_ms(), report.latency_max_ms());

  // Printing produces the expected sections.
  std::ostringstream os;
  report.Print(os);
  EXPECT_NE(os.str().find("Per-kind breakdown"), std::string::npos);
  EXPECT_NE(os.str().find("paraphrase-coverage"), std::string::npos);
}

// ---------- Alignment (SEMPRE-family) baseline ----------

class AlignmentTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }
};

TEST_F(AlignmentTest, LearnsAlignments) {
  EXPECT_GT(experiment().alignment_qa().num_alignments(), 100u);
}

TEST_F(AlignmentTest, AnswersPhraseBackedQuestion) {
  core::AnswerResult result = experiment().alignment_qa().Answer(
      "what is the population of honolulu");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "390000");
}

TEST_F(AlignmentTest, ReachesCvtIntentsUnlikeBoaBootstrapping) {
  // SEMPRE-style alignment learns from QA pairs, so it can reach the
  // marriage CVT — the phrase "the wife of" aligns with the 3-edge path.
  core::AnswerResult result = experiment().alignment_qa().Answer(
      "who is the wife of barack obama");
  ASSERT_TRUE(result.answered);
  EXPECT_EQ(result.value, "michelle obama");
  // The BOA bootstrapping lexicon cannot (direct predicates only).
  EXPECT_FALSE(experiment()
                   .synonym_qa()
                   .Answer("who is the wife of barack obama")
                   .answered);
}

TEST_F(AlignmentTest, StillLosesToTemplatesOnContextDependence) {
  // "how many people are there in X" is context-dependent: for a city it
  // means population; our alignment baseline picks one winner phrase-wide,
  // KBQA conceptualizes. At minimum KBQA must match it on the city case and
  // the baseline must not beat KBQA on a BFQ benchmark.
  corpus::BenchmarkConfig config;
  config.num_questions = 60;
  config.bfq_ratio = 1.0;
  config.unseen_paraphrase_rate = 0.1;
  config.seed = 321;
  corpus::BenchmarkSet set =
      corpus::GenerateBenchmark(experiment().world(), config);
  eval::RunResult kbqa = eval::RunBenchmark(experiment().kbqa(), set);
  eval::RunResult alignment =
      eval::RunBenchmark(experiment().alignment_qa(), set);
  EXPECT_GE(kbqa.counts.R(), alignment.counts.R());
}

}  // namespace
}  // namespace kbqa
