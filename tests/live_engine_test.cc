// Live-mutation serving semantics (DESIGN.md §10): a LiveKbqaEngine over
// a MutableKb must (a) answer exactly like the frozen engine while no
// mutation has happened, (b) never serve a pre-mutation answer after a
// mutation — the stale-cache regression this PR fixes — and (c) answer
// identically before and after the background merge folds the overlay
// into a fresh frozen base (id stability makes the trained model valid
// across merges).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/kbqa_system.h"
#include "core/live_engine.h"
#include "core/online.h"
#include "corpus/qa_generator.h"
#include "eval/experiment.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "rdf/mutable_kb.h"

namespace kbqa {
namespace {

class LiveEngineTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }

  static std::vector<std::string> BenchmarkQuestions(size_t n,
                                                     uint64_t seed) {
    corpus::BenchmarkConfig config;
    config.num_questions = n;
    config.seed = seed;
    std::vector<std::string> questions;
    for (const corpus::QaPair& pair :
         corpus::GenerateBenchmark(experiment().world(), config)
             .questions.pairs) {
      questions.push_back(pair.question);
    }
    return questions;
  }

  /// The Save/Load roundtrip preserves ids bit-for-bit, so the copy seeds
  /// a MutableKb whose base TermIds/PredIds match the trained model's.
  static rdf::KnowledgeBase CopyBaseKb() {
    const std::string path = ::testing::TempDir() + "/live_engine_kb.bin";
    auto saved = experiment().world().kb.Save(path);
    EXPECT_TRUE(saved.ok()) << saved;
    auto loaded = rdf::KnowledgeBase::Load(path);
    EXPECT_TRUE(loaded.ok());
    return std::move(loaded).value();
  }

  static void ExpectSameAnswer(const core::AnswerResult& got,
                               const core::AnswerResult& want,
                               const std::string& question) {
    EXPECT_EQ(got.answered, want.answered) << question;
    EXPECT_EQ(got.value, want.value) << question;
    EXPECT_EQ(got.score, want.score) << question;
    EXPECT_EQ(got.predicate, want.predicate) << question;
    EXPECT_EQ(got.sparql, want.sparql) << question;
    EXPECT_EQ(got.values, want.values) << question;
  }
};

TEST_F(LiveEngineTest, UnmutatedLiveEngineMatchesFrozenEngineExactly) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  rdf::MutableKb live(CopyBaseKb());
  core::LiveKbqaEngine::Options options;
  options.alias_predicates = experiment().world().alias_predicates;
  options.online = kbqa.options().online;
  core::LiveKbqaEngine engine(&live, &experiment().world().taxonomy,
                              &kbqa.template_store(),
                              &kbqa.expanded_kb().paths(), options);

  core::OnlineInference frozen(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(),
      kbqa.options().online);

  size_t answered = 0;
  for (const std::string& q : BenchmarkQuestions(25, 808)) {
    const core::AnswerResult want = frozen.Answer(q);
    ExpectSameAnswer(engine.Answer(q), want, q);
    if (want.answered) ++answered;
  }
  EXPECT_GT(answered, 0u);
  EXPECT_EQ(engine.epoch(), 0u);
}

TEST_F(LiveEngineTest, PostMutationQueryNeverReturnsPreMutationAnswer) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  const rdf::KnowledgeBase& base = experiment().world().kb;
  const rdf::PathDictionary& paths = kbqa.expanded_kb().paths();

  rdf::MutableKb::Options live_options;
  live_options.auto_merge = false;  // merge only when the test says so
  rdf::MutableKb live(CopyBaseKb(), live_options);
  const auto engine = kbqa.MakeLiveEngine(&live);
  ASSERT_NE(engine, nullptr);

  // Both cache tiers on: the whole point is that version-tagged keys keep
  // a warm cache from replaying the pre-mutation world.
  core::AnswerOptions answer_options;

  // Pick a question answered through a single-hop path, so the winning
  // fact is one (entity, predicate) whose triples we can rewrite.
  std::string question;
  core::AnswerResult before;
  rdf::TermId entity = rdf::kInvalidTerm;
  rdf::PredId pred = 0;
  for (const std::string& q : BenchmarkQuestions(40, 2468)) {
    const core::AnswerResult r = engine->AnswerCached(q, answer_options);
    if (!r.answered || r.ranked.empty()) continue;
    const rdf::PredPath& path = paths.GetPath(r.ranked[0].best_path);
    if (path.size() != 1) continue;
    question = q;
    before = r;
    entity = r.ranked[0].best_entity;
    pred = path[0];
    break;
  }
  ASSERT_FALSE(question.empty()) << "no single-hop answered question";

  // Warm the answer cache at the current version, then rewrite the
  // winning fact: delete every value of (entity, pred), add a sentinel.
  ExpectSameAnswer(engine->AnswerCached(question, answer_options), before,
                   question);
  const std::string s = base.NodeString(entity);
  const std::string p = base.PredicateString(pred);
  for (const rdf::TermId v : base.Objects(entity, pred)) {
    live.DeleteTriple(s, p, base.NodeString(v));
  }
  const std::string sentinel = "freshness sentinel value";
  live.AddTriple(s, p, sentinel, /*object_is_literal=*/true);
  ASSERT_EQ(live.epoch(), 0u) << "mutation must not require a merge";

  // The pre-mutation answer must be gone immediately — before any merge —
  // even though it is still sitting in the answer cache under the old
  // version tag.
  const core::AnswerResult after =
      engine->AnswerCached(question, answer_options);
  EXPECT_FALSE(after.answered == before.answered &&
               after.value == before.value && after.values == before.values &&
               after.predicate == before.predicate)
      << "stale pre-mutation answer served for: " << question;
  if (after.answered && after.predicate == before.predicate) {
    EXPECT_EQ(after.values, std::vector<std::string>{sentinel});
  }
  // Memoized at the new version: asking again replays the fresh answer.
  ExpectSameAnswer(engine->AnswerCached(question, answer_options), after,
                   question);

  // Merging folds the overlay into a new frozen base; the answer must not
  // change, and the old version's cache entries must stay unreachable.
  live.ForceMerge();
  EXPECT_GE(live.epoch(), 1u);
  ExpectSameAnswer(engine->AnswerCached(question, answer_options), after,
                   question);
  ExpectSameAnswer(engine->Answer(question), after, question);
}

TEST_F(LiveEngineTest, MakeLiveEngineAnswersBenchmarkAfterBackgroundMerges) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  rdf::MutableKb::Options live_options;
  live_options.merge_trigger_ops = 4;  // force background merges early
  rdf::MutableKb live(CopyBaseKb(), live_options);
  const auto engine = kbqa.MakeLiveEngine(&live);
  ASSERT_NE(engine, nullptr);

  const std::vector<std::string> questions = BenchmarkQuestions(15, 909);
  const std::vector<core::AnswerResult> want = engine->AnswerAll(questions, 1);

  // Churn unrelated entities through several background merges.
  for (int i = 0; i < 12; ++i) {
    live.AddTriple("live/entity" + std::to_string(i), "likes",
                   "value" + std::to_string(i), /*object_is_literal=*/true);
  }
  live.WaitForMergeIdle();
  EXPECT_GE(live.merges_completed(), 1u);

  // Unrelated churn must not disturb any benchmark answer (id stability:
  // the trained model's ids survived every merge).
  const std::vector<core::AnswerResult> got = engine->AnswerAll(questions, 2);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectSameAnswer(got[i], want[i], questions[i]);
  }
}

}  // namespace
}  // namespace kbqa
