#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace kbqa {
namespace {

using Cache = ShardedLruCache<uint64_t, std::vector<uint32_t>>;

/// Deterministic payload for a key, so stress readers can verify that a
/// hit returns exactly the bytes that were inserted.
std::vector<uint32_t> PayloadFor(uint64_t key, size_t len) {
  std::vector<uint32_t> payload(len);
  for (size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<uint32_t>(key * 31 + i);
  }
  return payload;
}

uint64_t ChargeOf(size_t len) {
  return sizeof(uint64_t) + len * sizeof(uint32_t);
}

TEST(ShardedLruCacheTest, GetMissThenHit) {
  Cache cache(/*budget_bytes=*/0);
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Get(7, &out));
  cache.Insert(7, PayloadFor(7, 4), 4 * sizeof(uint32_t));
  ASSERT_TRUE(cache.Get(7, &out));
  EXPECT_EQ(out, PayloadFor(7, 4));
}

TEST(ShardedLruCacheTest, EvictionFollowsLruOrder) {
  // Single shard so the recency order is global. Budget fits exactly three
  // four-element entries.
  const uint64_t charge = ChargeOf(4);
  Cache cache(3 * charge, /*num_shards=*/1);
  cache.Insert(1, PayloadFor(1, 4), 4 * sizeof(uint32_t));
  cache.Insert(2, PayloadFor(2, 4), 4 * sizeof(uint32_t));
  cache.Insert(3, PayloadFor(3, 4), 4 * sizeof(uint32_t));

  // Touch 1: recency becomes 1 > 3 > 2, so inserting 4 must evict 2.
  std::vector<uint32_t> out;
  ASSERT_TRUE(cache.Get(1, &out));
  cache.Insert(4, PayloadFor(4, 4), 4 * sizeof(uint32_t));

  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  EXPECT_TRUE(cache.Get(4, &out));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 3 * charge);
}

TEST(ShardedLruCacheTest, ByteAccountingNeverExceedsBudget) {
  const uint64_t budget = 4096;
  Cache cache(budget, /*num_shards=*/4);
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.Uniform(5000);
    const size_t len = 1 + rng.Uniform(32);
    cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
    if (i % 512 == 0) {
      EXPECT_LE(cache.GetStats().bytes, budget);
    }
  }
  const Cache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(ShardedLruCacheTest, OversizedEntryIsNotAdmitted) {
  Cache cache(ChargeOf(4) * 2, /*num_shards=*/1);
  cache.Insert(1, PayloadFor(1, 4), 4 * sizeof(uint32_t));
  // This entry alone exceeds the whole budget; admitting it would purge
  // the shard, so it must be skipped and leave the books untouched.
  cache.Insert(2, PayloadFor(2, 1000), 1000 * sizeof(uint32_t));
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(1, &out));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes, ChargeOf(4));
}

TEST(ShardedLruCacheTest, UnboundedNeverEvicts) {
  Cache cache(/*budget_bytes=*/0);
  for (uint64_t key = 0; key < 1000; ++key) {
    cache.Insert(key, PayloadFor(key, 8), 8 * sizeof(uint32_t));
  }
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1000u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes, 1000 * ChargeOf(8));
  EXPECT_EQ(cache.budget_bytes(), 0u);
}

TEST(ShardedLruCacheTest, DuplicateInsertKeepsFirstEntryAndCharge) {
  Cache cache(/*budget_bytes=*/0, /*num_shards=*/1);
  cache.Insert(5, PayloadFor(5, 8), 8 * sizeof(uint32_t));
  cache.Insert(5, PayloadFor(5, 8), 8 * sizeof(uint32_t));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, ChargeOf(8));
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  Cache cache(0, /*num_shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  Cache one(0, /*num_shards=*/0);
  EXPECT_EQ(one.num_shards(), 1u);
}

// Multi-threaded stress: concurrent Get/Insert over a keyspace several
// times the budget. Run under the ASAN=ON configuration this doubles as a
// data-race / lifetime check on the shard books; value integrity is
// asserted on every hit.
TEST(ShardedLruCacheTest, ConcurrentMixedLoadKeepsBooksAndValuesIntact) {
  const uint64_t budget = 64 * 1024;
  const uint64_t keyspace = 4096;
  Cache cache(budget, /*num_shards=*/8);
  std::atomic<uint64_t> corrupt_hits{0};
  std::vector<std::thread> threads;
  const int num_threads = 8;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      std::vector<uint32_t> out;
      for (int i = 0; i < 20000; ++i) {
        const uint64_t key = rng.Uniform(keyspace);
        const size_t len = 1 + key % 16;
        if (cache.Get(key, &out)) {
          if (out != PayloadFor(key, len)) corrupt_hits.fetch_add(1);
        } else {
          cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(corrupt_hits.load(), 0u);
  const Cache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace kbqa
