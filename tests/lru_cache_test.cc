#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace kbqa {
namespace {

using Cache = ShardedLruCache<uint64_t, std::vector<uint32_t>>;

/// Deterministic payload for a key, so stress readers can verify that a
/// hit returns exactly the bytes that were inserted.
std::vector<uint32_t> PayloadFor(uint64_t key, size_t len) {
  std::vector<uint32_t> payload(len);
  for (size_t i = 0; i < len; ++i) {
    payload[i] = static_cast<uint32_t>(key * 31 + i);
  }
  return payload;
}

uint64_t ChargeOf(size_t len) {
  return sizeof(uint64_t) + len * sizeof(uint32_t);
}

TEST(ShardedLruCacheTest, GetMissThenHit) {
  Cache cache(/*budget_bytes=*/0);
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Get(7, &out));
  cache.Insert(7, PayloadFor(7, 4), 4 * sizeof(uint32_t));
  ASSERT_TRUE(cache.Get(7, &out));
  EXPECT_EQ(out, PayloadFor(7, 4));
}

TEST(ShardedLruCacheTest, EvictionFollowsLruOrder) {
  // Single shard so the recency order is global. Budget fits exactly three
  // four-element entries.
  const uint64_t charge = ChargeOf(4);
  Cache cache(3 * charge, /*num_shards=*/1);
  cache.Insert(1, PayloadFor(1, 4), 4 * sizeof(uint32_t));
  cache.Insert(2, PayloadFor(2, 4), 4 * sizeof(uint32_t));
  cache.Insert(3, PayloadFor(3, 4), 4 * sizeof(uint32_t));

  // Touch 1: recency becomes 1 > 3 > 2, so inserting 4 must evict 2.
  std::vector<uint32_t> out;
  ASSERT_TRUE(cache.Get(1, &out));
  cache.Insert(4, PayloadFor(4, 4), 4 * sizeof(uint32_t));

  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(1, &out));
  EXPECT_TRUE(cache.Get(3, &out));
  EXPECT_TRUE(cache.Get(4, &out));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes, 3 * charge);
}

TEST(ShardedLruCacheTest, ByteAccountingNeverExceedsBudget) {
  const uint64_t budget = 4096;
  Cache cache(budget, /*num_shards=*/4);
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.Uniform(5000);
    const size_t len = 1 + rng.Uniform(32);
    cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
    if (i % 512 == 0) {
      EXPECT_LE(cache.GetStats().bytes, budget);
    }
  }
  const Cache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(ShardedLruCacheTest, OversizedEntryIsNotAdmitted) {
  Cache cache(ChargeOf(4) * 2, /*num_shards=*/1);
  cache.Insert(1, PayloadFor(1, 4), 4 * sizeof(uint32_t));
  // This entry alone exceeds the whole budget; admitting it would purge
  // the shard, so it must be skipped and leave the books untouched.
  cache.Insert(2, PayloadFor(2, 1000), 1000 * sizeof(uint32_t));
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Get(2, &out));
  EXPECT_TRUE(cache.Get(1, &out));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes, ChargeOf(4));
}

TEST(ShardedLruCacheTest, UnboundedNeverEvicts) {
  Cache cache(/*budget_bytes=*/0);
  for (uint64_t key = 0; key < 1000; ++key) {
    cache.Insert(key, PayloadFor(key, 8), 8 * sizeof(uint32_t));
  }
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1000u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes, 1000 * ChargeOf(8));
  EXPECT_EQ(cache.budget_bytes(), 0u);
}

TEST(ShardedLruCacheTest, DuplicateInsertReplacesValueAndKeepsCharge) {
  Cache cache(/*budget_bytes=*/0, /*num_shards=*/1);
  cache.Insert(5, PayloadFor(5, 8), 8 * sizeof(uint32_t));
  cache.Insert(5, PayloadFor(6, 8), 8 * sizeof(uint32_t));
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, ChargeOf(8));
  // Same-key insert replaces: the later value wins (a mutable KB can
  // legitimately recompute a key to a different value).
  std::vector<uint32_t> out;
  ASSERT_TRUE(cache.Get(5, &out));
  EXPECT_EQ(out, PayloadFor(6, 8));
}

// Regression: a same-key replacement with a different-sized value must
// re-book exactly the size delta, in the shard books and in the global
// reservation, in both the growing and the shrinking direction.
TEST(ShardedLruCacheTest, ReplacementRebooksSizeDeltaExactly) {
  const uint64_t budget = 4096;
  Cache cache(budget, /*num_shards=*/2);
  cache.Insert(9, PayloadFor(9, 4), 4 * sizeof(uint32_t));
  EXPECT_EQ(cache.GetStats().bytes, ChargeOf(4));
  EXPECT_EQ(cache.reserved_bytes(), ChargeOf(4));

  cache.Insert(9, PayloadFor(9, 32), 32 * sizeof(uint32_t));  // grow
  EXPECT_EQ(cache.GetStats().entries, 1u);
  EXPECT_EQ(cache.GetStats().bytes, ChargeOf(32));
  EXPECT_EQ(cache.reserved_bytes(), ChargeOf(32));

  cache.Insert(9, PayloadFor(9, 2), 2 * sizeof(uint32_t));  // shrink
  EXPECT_EQ(cache.GetStats().entries, 1u);
  EXPECT_EQ(cache.GetStats().bytes, ChargeOf(2));
  EXPECT_EQ(cache.reserved_bytes(), ChargeOf(2));

  std::vector<uint32_t> out;
  ASSERT_TRUE(cache.Get(9, &out));
  EXPECT_EQ(out, PayloadFor(9, 2));
}

TEST(ShardedLruCacheTest, EraseReleasesChargeAndClearEmptiesEveryShard) {
  const uint64_t budget = 1 << 16;
  Cache cache(budget, /*num_shards=*/4);
  for (uint64_t key = 0; key < 64; ++key) {
    cache.Insert(key, PayloadFor(key, 4), 4 * sizeof(uint32_t));
  }
  ASSERT_EQ(cache.GetStats().entries, 64u);

  EXPECT_TRUE(cache.Erase(7));
  EXPECT_FALSE(cache.Erase(7));    // already gone
  EXPECT_FALSE(cache.Erase(999));  // never present
  std::vector<uint32_t> out;
  EXPECT_FALSE(cache.Get(7, &out));
  EXPECT_EQ(cache.GetStats().entries, 63u);
  EXPECT_EQ(cache.GetStats().bytes, 63 * ChargeOf(4));
  EXPECT_EQ(cache.reserved_bytes(), 63 * ChargeOf(4));

  cache.Clear();
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(cache.reserved_bytes(), 0u);
  EXPECT_EQ(stats.evictions, 0u);  // clears are not evictions
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(cache.Get(key, &out)) << key;
  }
}

// The accounting-storm regression: across borrowing shards, after an
// arbitrary insert / different-size-replace / erase storm, erasing every
// surviving key must return BOTH books — per-shard committed bytes and the
// global atomic reservation — to exactly zero, and the full budget must be
// usable again. Any leak in the replacement or removal paths shows up here
// as a nonzero residue or a spuriously shrunken budget.
TEST(ShardedLruCacheTest, StormAccountingReturnsExactlyToZero) {
  const uint64_t charge4 = ChargeOf(4);
  const uint64_t budget = 48 * charge4;  // small: forces cross-shard borrow
  Cache cache(budget, /*num_shards=*/8);
  Rng rng(20250808);
  std::vector<uint64_t> live;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Uniform(96);
    switch (rng.Uniform(3)) {
      case 0: {  // insert or same-key replace with a fresh size
        const size_t len = 1 + rng.Uniform(24);
        cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
        break;
      }
      case 1:
        (void)cache.Erase(key);
        break;
      default: {
        std::vector<uint32_t> out;
        (void)cache.Get(key, &out);
        break;
      }
    }
    if (i % 1024 == 0) {
      EXPECT_LE(cache.GetStats().bytes, budget);
      EXPECT_LE(cache.reserved_bytes(), budget);
    }
  }
  // Drain: erase the whole keyspace, then the books must be exactly zero.
  for (uint64_t key = 0; key < 96; ++key) (void)cache.Erase(key);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.GetStats().bytes, 0u);
  EXPECT_EQ(cache.reserved_bytes(), 0u);
  // The full budget is available again: exactly 48 four-word entries fit
  // with zero evictions.
  for (uint64_t key = 1000; key < 1048; ++key) {
    EXPECT_EQ(cache.Insert(key, PayloadFor(key, 4), 4 * sizeof(uint32_t)),
              0u);
  }
  EXPECT_EQ(cache.GetStats().entries, 48u);
  EXPECT_EQ(cache.GetStats().bytes, budget);
  EXPECT_EQ(cache.reserved_bytes(), budget);
}

// Concurrent flavor of the storm: 8 threads mixing inserts, replacements,
// erases, and clears, then a single-threaded drain. The final books must
// still be exactly zero (run under ASan/TSan configurations this also
// gates the locking of the new Erase/Clear paths).
TEST(ShardedLruCacheTest, ConcurrentStormThenDrainReturnsToZero) {
  const uint64_t budget = 1 << 14;
  Cache cache(budget, /*num_shards=*/8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(777 + static_cast<uint64_t>(t));
      std::vector<uint32_t> out;
      for (int i = 0; i < 8000; ++i) {
        const uint64_t key = rng.Uniform(512);
        const uint64_t op = rng.Uniform(16);
        if (op == 0) {
          cache.Clear();
        } else if (op < 5) {
          (void)cache.Erase(key);
        } else if (op < 10) {
          (void)cache.Get(key, &out);
        } else {
          const size_t len = 1 + rng.Uniform(16);
          cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (uint64_t key = 0; key < 512; ++key) (void)cache.Erase(key);
  EXPECT_EQ(cache.GetStats().entries, 0u);
  EXPECT_EQ(cache.GetStats().bytes, 0u);
  EXPECT_EQ(cache.reserved_bytes(), 0u);
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  Cache cache(0, /*num_shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  Cache one(0, /*num_shards=*/0);
  EXPECT_EQ(one.num_shards(), 1u);
}

// Regression for the per-shard budget split: when every key hashes to the
// same shard, the cache must still be able to fill the WHOLE budget from
// that one shard (global accounting / shard borrowing) instead of
// thrashing its 1/N slice while sibling shards sit empty.
TEST(ShardedLruCacheTest, SkewedKeysUseWholeBudgetNotOneShardSlice) {
  const size_t kShards = 16;
  const uint64_t charge = ChargeOf(4);
  const uint64_t budget = 64 * charge;  // room for 64 entries globally
  Cache cache(budget, kShards);

  // Replicate the cache's shard mix to mine keys that all land in shard 0.
  auto shard_of = [&](uint64_t key) {
    uint64_t h = static_cast<uint64_t>(std::hash<uint64_t>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h & (kShards - 1);
  };
  std::vector<uint64_t> skewed;
  for (uint64_t key = 0; skewed.size() < 64; ++key) {
    if (shard_of(key) == 0) skewed.push_back(key);
  }

  for (uint64_t key : skewed) {
    cache.Insert(key, PayloadFor(key, 4), 4 * sizeof(uint32_t));
  }

  // With the old budget/num_shards split only 4 of these 64 entries could
  // be resident; with global accounting all 64 fit and none were evicted.
  const Cache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 64u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes, budget);
  std::vector<uint32_t> out;
  for (uint64_t key : skewed) {
    EXPECT_TRUE(cache.Get(key, &out)) << key;
  }

  // One more skewed insert must evict exactly the LRU entry, keeping the
  // total pinned at the budget.
  for (uint64_t key = skewed.back() + 1;; ++key) {
    if (shard_of(key) != 0) continue;
    EXPECT_EQ(cache.Insert(key, PayloadFor(key, 4), 4 * sizeof(uint32_t)),
              1u);
    break;
  }
  EXPECT_EQ(cache.GetStats().bytes, budget);
  EXPECT_FALSE(cache.Get(skewed.front(), &out));  // LRU victim
}

// Borrowing: a hot shard that needs room may evict from a cold sibling
// when its own list is empty, instead of failing the insert.
TEST(ShardedLruCacheTest, BorrowsFromSiblingShardWhenOwnShardEmpty) {
  const size_t kShards = 4;
  const uint64_t charge = ChargeOf(4);
  Cache cache(2 * charge, kShards);
  auto shard_of = [&](uint64_t key) {
    uint64_t h = static_cast<uint64_t>(std::hash<uint64_t>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h & (kShards - 1);
  };
  // Fill the budget entirely from one shard...
  uint64_t shard_a = 0;
  while (shard_of(shard_a) != 0) ++shard_a;
  uint64_t shard_a2 = shard_a + 1;
  while (shard_of(shard_a2) != 0) ++shard_a2;
  cache.Insert(shard_a, PayloadFor(shard_a, 4), 4 * sizeof(uint32_t));
  cache.Insert(shard_a2, PayloadFor(shard_a2, 4), 4 * sizeof(uint32_t));
  ASSERT_EQ(cache.GetStats().bytes, 2 * charge);

  // ...then insert into a different, empty shard: it must borrow (evict
  // from shard 0) rather than give up or blow the budget.
  uint64_t other = 0;
  while (shard_of(other) != 1) ++other;
  EXPECT_EQ(cache.Insert(other, PayloadFor(other, 4), 4 * sizeof(uint32_t)),
            1u);
  std::vector<uint32_t> out;
  EXPECT_TRUE(cache.Get(other, &out));
  EXPECT_EQ(cache.GetStats().bytes, 2 * charge);
  EXPECT_EQ(cache.GetStats().entries, 2u);
}

// Multi-threaded stress: concurrent Get/Insert over a keyspace several
// times the budget. Run under the ASAN=ON configuration this doubles as a
// data-race / lifetime check on the shard books; value integrity is
// asserted on every hit.
TEST(ShardedLruCacheTest, ConcurrentMixedLoadKeepsBooksAndValuesIntact) {
  const uint64_t budget = 64 * 1024;
  const uint64_t keyspace = 4096;
  Cache cache(budget, /*num_shards=*/8);
  std::atomic<uint64_t> corrupt_hits{0};
  std::vector<std::thread> threads;
  const int num_threads = 8;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      std::vector<uint32_t> out;
      for (int i = 0; i < 20000; ++i) {
        const uint64_t key = rng.Uniform(keyspace);
        const size_t len = 1 + key % 16;
        if (cache.Get(key, &out)) {
          if (out != PayloadFor(key, len)) corrupt_hits.fetch_add(1);
        } else {
          cache.Insert(key, PayloadFor(key, len), len * sizeof(uint32_t));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(corrupt_hits.load(), 0u);
  const Cache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.bytes, budget);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace kbqa
