#include "rdf/mutable_kb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rdf/knowledge_base.h"
#include "util/rng.h"

namespace kbqa::rdf {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Saves both stores and compares the snapshot bytes — Save serializes
/// the frozen CSR directly, so byte equality is bit-identity of the
/// entire frozen layout (dictionaries, node kinds, both CSR directions).
void ExpectBitIdentical(const KnowledgeBase& a, const KnowledgeBase& b,
                        const std::string& tag) {
  const std::string pa = ::testing::TempDir() + "/mkb_a_" + tag + ".bin";
  const std::string pb = ::testing::TempDir() + "/mkb_b_" + tag + ".bin";
  ASSERT_TRUE(a.Save(pa).ok());
  ASSERT_TRUE(b.Save(pb).ok());
  EXPECT_EQ(ReadFileBytes(pa), ReadFileBytes(pb)) << tag;
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

/// From-scratch freeze of the mutated world: an independent replay of the
/// op-log semantics through the public KnowledgeBase API. Base dictionary
/// entries are re-interned in id order first (the id-stability invariant),
/// then ops replay in order — adds intern unseen strings as they appear,
/// deletes never intern — over a plain triple set.
KnowledgeBase BuildReference(const KnowledgeBase& base,
                             const std::vector<MutationOp>& ops,
                             int num_threads) {
  KnowledgeBase next;
  for (TermId id = 0; id < base.num_nodes(); ++id) {
    if (base.IsLiteral(id)) {
      next.AddLiteral(base.NodeString(id));
    } else {
      next.AddEntity(base.NodeString(id));
    }
  }
  for (PredId p = 0; p < base.num_predicates(); ++p) {
    next.AddPredicate(base.PredicateString(p));
  }
  if (base.name_predicate() != kInvalidPred) {
    next.SetNamePredicate(base.name_predicate());
  }
  std::set<std::array<uint64_t, 3>> triples;
  for (TermId s = 0; s < base.num_nodes(); ++s) {
    for (const PredicateObject& po : base.Out(s)) {
      triples.insert({s, po.p, po.o});
    }
  }
  for (const MutationOp& op : ops) {
    if (op.is_delete) {
      auto s = next.LookupNode(op.s);
      auto p = next.LookupPredicate(op.p);
      auto o = next.LookupNode(op.o);
      if (!s || !p || !o) continue;
      triples.erase({*s, *p, *o});
      continue;
    }
    const TermId s = next.AddEntity(op.s);
    const PredId p = next.AddPredicate(op.p);
    const TermId o =
        op.object_is_literal ? next.AddLiteral(op.o) : next.AddEntity(op.o);
    triples.insert({s, p, o});
  }
  for (const auto& t : triples) {
    next.AddTriple(static_cast<TermId>(t[0]), static_cast<PredId>(t[1]),
                   static_cast<TermId>(t[2]));
  }
  next.Freeze(num_threads);
  return next;
}

/// The paper's Figure 1 toy world (same facts as rdf_test's fixture).
KnowledgeBase BuildToyKb() {
  KnowledgeBase kb;
  PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  kb.AddTriple("person/a", "name", "barack obama", true);
  kb.AddTriple("person/a", "dob", "1961", true);
  kb.AddTriple("person/a", "pob", "city/d", false);
  kb.AddTriple("person/a", "marriage", "marriage/b", false);
  kb.AddTriple("marriage/b", "person", "person/c", false);
  kb.AddTriple("marriage/b", "date", "1992", true);
  kb.AddTriple("person/c", "name", "michelle obama", true);
  kb.AddTriple("person/c", "dob", "1964", true);
  kb.AddTriple("city/d", "name", "honolulu", true);
  kb.AddTriple("city/d", "population", "390000", true);
  kb.Freeze();
  return kb;
}

MutableKb::Options ManualMerge() {
  MutableKb::Options options;
  options.auto_merge = false;
  return options;
}

TEST(MutableKbTest, AddIsVisibleBeforeAnyMerge) {
  MutableKb live(BuildToyKb(), ManualMerge());
  auto before = live.Pin();
  const TermId a = *before->LookupNode("person/a");
  const PredId dob = *before->LookupPredicate("dob");

  live.AddTriple("person/a", "dob", "1962", /*object_is_literal=*/true);

  auto after = live.Pin();
  EXPECT_EQ(after->epoch, 0u);
  EXPECT_EQ(after->version, 1u);
  const TermId v1962 = *after->LookupNode("1962");
  EXPECT_GE(v1962, before->base->num_nodes());  // overlay node
  EXPECT_TRUE(after->IsLiteral(v1962));
  EXPECT_EQ(after->NodeString(v1962), "1962");
  EXPECT_EQ(after->Objects(a, dob),
            (std::vector<TermId>{*before->LookupNode("1961"), v1962}));
  // The pinned pre-mutation snapshot is untouched (RCU isolation).
  EXPECT_EQ(before->Objects(a, dob),
            (std::vector<TermId>{*before->LookupNode("1961")}));
}

TEST(MutableKbTest, DeleteTombstonesAndLaterOpWins) {
  MutableKb live(BuildToyKb(), ManualMerge());
  auto snap = live.Pin();
  const TermId a = *snap->LookupNode("person/a");
  const PredId dob = *snap->LookupPredicate("dob");
  const TermId y1961 = *snap->LookupNode("1961");

  live.DeleteTriple("person/a", "dob", "1961");
  EXPECT_TRUE(live.Pin()->Objects(a, dob).empty());
  EXPECT_FALSE(live.Pin()->HasTriple(a, dob, y1961));

  // Later op wins: re-add resurrects the base triple (tombstone cleared),
  // without duplicating it.
  live.AddTriple("person/a", "dob", "1961", true);
  EXPECT_EQ(live.Pin()->Objects(a, dob), (std::vector<TermId>{y1961}));
  EXPECT_TRUE(live.Pin()->HasTriple(a, dob, y1961));

  // Deleting an overlay add removes it again.
  live.AddTriple("person/a", "dob", "1962", true);
  live.DeleteTriple("person/a", "dob", "1962");
  EXPECT_EQ(live.Pin()->Objects(a, dob), (std::vector<TermId>{y1961}));

  // Deleting unknown strings is a no-op and interns nothing.
  const size_t nodes_before = live.Pin()->num_nodes();
  live.DeleteTriple("person/a", "dob", "never seen");
  live.DeleteTriple("ghost", "dob", "1961");
  EXPECT_EQ(live.Pin()->num_nodes(), nodes_before);
  EXPECT_EQ(live.Pin()->Objects(a, dob), (std::vector<TermId>{y1961}));
}

TEST(MutableKbTest, MergedPathWalkSeesOverlayHops) {
  MutableKb live(BuildToyKb(), ManualMerge());
  auto snap = live.Pin();
  const TermId a = *snap->LookupNode("person/a");
  const PredId marriage = *snap->LookupPredicate("marriage");
  const PredId name = *snap->LookupPredicate("name");
  const PredId person = *snap->LookupPredicate("person");

  // Add a second marriage CVT entirely in the overlay, then walk
  // marriage -> person -> name across base and overlay hops.
  live.AddTriple("person/a", "marriage", "marriage/b2", false);
  live.AddTriple("marriage/b2", "person", "person/e", false);
  live.AddTriple("person/e", "name", "jane roe", true);

  auto after = live.Pin();
  const PredPath path = {marriage, person, name};
  const std::vector<TermId> names = after->ObjectsViaPath(a, path);
  std::vector<std::string> strings;
  for (TermId id : names) strings.push_back(after->NodeString(id));
  std::sort(strings.begin(), strings.end());
  EXPECT_EQ(strings,
            (std::vector<std::string>{"jane roe", "michelle obama"}));

  // Tombstoning the base hop prunes that branch of the walk.
  live.DeleteTriple("person/a", "marriage", "marriage/b");
  const std::vector<TermId> pruned = live.Pin()->ObjectsViaPath(a, path);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(live.Pin()->NodeString(pruned[0]), "jane roe");
}

TEST(MutableKbTest, MergePreservesBaseIdsAndEmptiesOverlay) {
  MutableKb live(BuildToyKb(), ManualMerge());
  auto before = live.Pin();
  const TermId a = *before->LookupNode("person/a");
  const TermId honolulu = *before->LookupNode("honolulu");
  const PredId dob = *before->LookupPredicate("dob");

  live.AddTriple("person/a", "spouse_count", "2", true);
  live.DeleteTriple("city/d", "population", "390000");
  const TermId overlay_id = *live.Pin()->LookupNode("2");

  live.ForceMerge();
  auto merged = live.Pin();
  EXPECT_EQ(merged.get() == before.get(), false);
  EXPECT_EQ(merged->epoch, 1u);
  EXPECT_TRUE(merged->overlay->empty());
  EXPECT_EQ(live.pending_ops(), 0u);
  // Id stability: every base id and the overlay-assigned id survive.
  EXPECT_EQ(*merged->base->LookupNode("person/a"), a);
  EXPECT_EQ(*merged->base->LookupNode("honolulu"), honolulu);
  EXPECT_EQ(*merged->base->LookupPredicate("dob"), dob);
  EXPECT_EQ(*merged->base->LookupNode("2"), overlay_id);
  // The merged base itself answers the mutated world.
  const PredId pop = *merged->base->LookupPredicate("population");
  const TermId d = *merged->base->LookupNode("city/d");
  EXPECT_TRUE(merged->base->Objects(d, pop).empty());
}

TEST(MutableKbTest, MergeIsBitIdenticalToFromScratchFreezeAtEveryThreadCount) {
  // Randomized storm: adds of new and existing triples, deletes of real
  // and bogus triples, across three merge epochs, then byte-compare the
  // final base against an independent from-scratch freeze of the ground
  // truth op log at several thread counts.
  KnowledgeBase base = BuildToyKb();
  const std::string base_path = ::testing::TempDir() + "/mkb_seed.bin";
  ASSERT_TRUE(base.Save(base_path).ok());
  auto reloaded = KnowledgeBase::Load(base_path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(base_path.c_str());

  MutableKb live(std::move(reloaded.value()), ManualMerge());
  Rng rng(20260808);
  std::vector<MutationOp> ground_truth;

  const std::vector<std::string> subjects = {"person/a", "person/c", "city/d",
                                             "person/new1", "person/new2"};
  const std::vector<std::string> preds = {"dob", "pob", "likes", "visited"};
  const std::vector<std::string> objects = {"1961", "1964", "honolulu",
                                            "city/d", "paris", "42"};
  for (int round = 0; round < 3; ++round) {
    std::vector<MutationOp> batch;
    for (int i = 0; i < 40; ++i) {
      MutationOp op;
      op.is_delete = rng.Uniform(3) == 0;
      op.s = subjects[rng.Uniform(subjects.size())];
      op.p = preds[rng.Uniform(preds.size())];
      op.o = objects[rng.Uniform(objects.size())];
      op.object_is_literal = op.o.find('/') == std::string::npos;
      batch.push_back(op);
      ground_truth.push_back(op);
    }
    live.Apply(batch);
    live.ForceMerge();
  }

  auto merged = live.Pin();
  ASSERT_TRUE(merged->overlay->empty());
  EXPECT_EQ(merged->epoch, 3u);
  for (int threads : {1, 2, 4}) {
    KnowledgeBase reference = BuildReference(base, ground_truth, threads);
    ExpectBitIdentical(*merged->base, reference,
                       "t" + std::to_string(threads));
  }

  // Pre-merge equivalence too: apply more ops WITHOUT merging and check
  // the merged-read view against a reference freeze of the longer log.
  std::vector<MutationOp> tail;
  for (int i = 0; i < 25; ++i) {
    MutationOp op;
    op.is_delete = rng.Uniform(4) == 0;
    op.s = subjects[rng.Uniform(subjects.size())];
    op.p = preds[rng.Uniform(preds.size())];
    op.o = objects[rng.Uniform(objects.size())];
    op.object_is_literal = op.o.find('/') == std::string::npos;
    tail.push_back(op);
    ground_truth.push_back(op);
  }
  live.Apply(tail);
  auto overlaid = live.Pin();
  ASSERT_FALSE(overlaid->overlay->empty());
  KnowledgeBase reference = BuildReference(base, ground_truth, 1);
  ASSERT_EQ(overlaid->num_nodes(), reference.num_nodes());
  ASSERT_EQ(overlaid->num_predicates(), reference.num_predicates());
  for (TermId s = 0; s < reference.num_nodes(); ++s) {
    EXPECT_EQ(overlaid->IsLiteral(s), reference.IsLiteral(s));
    EXPECT_EQ(overlaid->NodeString(s), reference.NodeString(s));
    for (PredId p = 0; p < reference.num_predicates(); ++p) {
      EXPECT_EQ(overlaid->Objects(s, p), reference.Objects(s, p))
          << "s=" << s << " p=" << p;
    }
  }
  // And after one more merge the overlay drains into an identical freeze.
  live.ForceMerge();
  ExpectBitIdentical(*live.Pin()->base, reference, "tail");
}

TEST(MutableKbTest, VersionEpochAccountingAndPublishHook) {
  MutableKb live(BuildToyKb(), ManualMerge());
  EXPECT_EQ(live.version(), 0u);
  EXPECT_EQ(live.epoch(), 0u);

  std::atomic<uint64_t> hook_epoch{0};
  std::atomic<int> hook_calls{0};
  live.SetPublishHook([&](const std::shared_ptr<const KbSnapshot>& snap) {
    hook_epoch.store(snap->epoch);
    hook_calls.fetch_add(1);
  });

  live.AddTriple("person/a", "dob", "1962", true);
  live.AddTriple("person/a", "dob", "1963", true);
  EXPECT_EQ(live.version(), 2u);
  EXPECT_EQ(live.epoch(), 0u);
  EXPECT_EQ(live.pending_ops(), 2u);
  EXPECT_EQ(hook_calls.load(), 0);  // Apply publishes no epoch

  live.ForceMerge();
  EXPECT_EQ(live.version(), 3u);  // merge publish bumps version too
  EXPECT_EQ(live.epoch(), 1u);
  EXPECT_EQ(live.merges_completed(), 1u);
  EXPECT_EQ(hook_calls.load(), 1);
  EXPECT_EQ(hook_epoch.load(), 1u);
  EXPECT_EQ(live.Pin()->version, live.version());

  // ForceMerge with nothing pending is a no-op (no epoch churn).
  live.ForceMerge();
  EXPECT_EQ(live.epoch(), 1u);
  EXPECT_EQ(hook_calls.load(), 1);
}

TEST(MutableKbTest, AutoMergeTriggersInBackground) {
  MutableKb::Options options;
  options.merge_trigger_ops = 4;
  options.merge_threads = 2;
  MutableKb live(BuildToyKb(), options);
  for (int i = 0; i < 5; ++i) {
    live.AddTriple("person/a", "visited", "place_" + std::to_string(i),
                   false);
  }
  live.WaitForMergeIdle();
  EXPECT_GE(live.merges_completed(), 1u);
  EXPECT_GE(live.epoch(), 1u);
  EXPECT_LT(live.pending_ops(), 4u);
  auto snap = live.Pin();
  const TermId a = *snap->LookupNode("person/a");
  const PredId visited = *snap->LookupPredicate("visited");
  EXPECT_EQ(snap->Objects(a, visited).size(), 5u);
}

}  // namespace
}  // namespace kbqa::rdf
