#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nlp/ner.h"
#include "nlp/pattern.h"
#include "nlp/question_classifier.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "rdf/knowledge_base.h"

namespace kbqa::nlp {
namespace {

// ---------- Tokenizer ----------

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenize("How many People are there, in Honolulu?"),
            (std::vector<std::string>{"how", "many", "people", "are", "there",
                                      "in", "honolulu"}));
}

TEST(TokenizerTest, KeepsDigitsAndInternalHyphens) {
  EXPECT_EQ(Tokenize("born in 1961 twenty-one"),
            (std::vector<std::string>{"born", "in", "1961", "twenty-one"}));
}

TEST(TokenizerTest, StripsSurroundingQuotesAndHyphens) {
  EXPECT_EQ(Tokenize("'hello' -world-"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_TRUE(Tokenize("...!!!").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, PossessiveFormsNormalizeIdentically) {
  // "obama's" and "obama 's" must produce the same token stream — template
  // matching depends on it.
  EXPECT_EQ(TokenizeQuestion("barack obama's wife"),
            TokenizeQuestion("barack obama 's wife"));
  EXPECT_EQ(TokenizeQuestion("obama's wife"),
            (std::vector<std::string>{"obama", "s", "wife"}));
}

TEST(TokenizerTest, NormalizeTextIsCanonical) {
  EXPECT_EQ(NormalizeText("  Who IS Barack Obama's wife? "),
            "who is barack obama s wife");
  EXPECT_EQ(NormalizeText("390,000"), "390 000");
}

TEST(TokenizerTest, JoinTokensRoundTrip) {
  std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(JoinTokens(tokens), "a b c");
  EXPECT_EQ(JoinTokens({}), "");
}

// ---------- Stopwords ----------

TEST(StopwordsTest, FunctionWordsAreStopwords) {
  for (const char* w : {"the", "of", "is", "what", "how", "many", "'s"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
  for (const char* w : {"population", "wife", "honolulu", "capital"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

// ---------- NER ----------

class NerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::PredId name = kb_.AddPredicate("name");
    kb_.SetNamePredicate(name);
    obama_ = kb_.AddEntity("person/obama");
    ny_ = kb_.AddEntity("city/ny");
    nyc_ = kb_.AddEntity("city/nyc");
    apple_fruit_ = kb_.AddEntity("fruit/apple");
    apple_co_ = kb_.AddEntity("company/apple");
    kb_.AddTriple(obama_, name, kb_.AddLiteral("barack obama"));
    kb_.AddTriple(ny_, name, kb_.AddLiteral("new york"));
    kb_.AddTriple(nyc_, name, kb_.AddLiteral("new york city"));
    kb_.AddTriple(apple_fruit_, name, kb_.AddLiteral("apple"));
    kb_.AddTriple(apple_co_, name, kb_.AddLiteral("apple"));
    kb_.Freeze();
    ner_ = std::make_unique<GazetteerNer>(kb_);
  }

  rdf::KnowledgeBase kb_;
  rdf::TermId obama_, ny_, nyc_, apple_fruit_, apple_co_;
  std::unique_ptr<GazetteerNer> ner_;
};

TEST_F(NerTest, FindsMultiTokenMention) {
  auto mentions = ner_->FindMentions(TokenizeQuestion(
      "when was barack obama born"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].begin, 2u);
  EXPECT_EQ(mentions[0].end, 4u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{obama_}));
}

TEST_F(NerTest, LongestMatchWins) {
  auto mentions =
      ner_->FindMentions(TokenizeQuestion("i love new york city a lot"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{nyc_}));
  EXPECT_EQ(mentions[0].size(), 3u);
}

TEST_F(NerTest, AmbiguousNameYieldsAllCandidates) {
  auto mentions = ner_->FindMentions(TokenizeQuestion("what about apple"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entities.size(), 2u);
}

TEST_F(NerTest, NoMentionsInPlainText) {
  EXPECT_TRUE(ner_->FindMentions(TokenizeQuestion("how are you today"))
                  .empty());
}

TEST_F(NerTest, MultipleMentions) {
  auto mentions = ner_->FindMentions(
      TokenizeQuestion("which has more people , new york or apple"));
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{ny_}));
  EXPECT_EQ(mentions[1].entities.size(), 2u);
}

TEST_F(NerTest, EntitiesForSpanExactOnly) {
  auto tokens = TokenizeQuestion("when was barack obama born");
  EXPECT_EQ(ner_->EntitiesForSpan(tokens, 2, 4),
            (std::vector<rdf::TermId>{obama_}));
  EXPECT_TRUE(ner_->EntitiesForSpan(tokens, 2, 5).empty());
  EXPECT_TRUE(ner_->EntitiesForSpan(tokens, 3, 3).empty());  // empty span
}

TEST_F(NerTest, LooksLikeNumber) {
  EXPECT_TRUE(LooksLikeNumber("1961"));
  EXPECT_FALSE(LooksLikeNumber("19a"));
  EXPECT_FALSE(LooksLikeNumber(""));
}

// ---------- Question classifier ----------

struct ClassifierCase {
  const char* question;
  QuestionClass expected;
};

class ClassifierTest : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(ClassifierTest, ClassifiesCase) {
  QuestionClassifier classifier;
  EXPECT_EQ(classifier.Classify(TokenizeQuestion(GetParam().question)),
            GetParam().expected)
      << GetParam().question;
}

INSTANTIATE_TEST_SUITE_P(
    UiucCases, ClassifierTest,
    ::testing::Values(
        ClassifierCase{"who is the wife of barack obama",
                       QuestionClass::kHuman},
        ClassifierCase{"whose idea was it", QuestionClass::kHuman},
        ClassifierCase{"where was barack obama born",
                       QuestionClass::kLocation},
        ClassifierCase{"when was barack obama born", QuestionClass::kNumeric},
        ClassifierCase{"why is the sky blue", QuestionClass::kDescription},
        ClassifierCase{"how many people are there in honolulu",
                       QuestionClass::kNumeric},
        ClassifierCase{"how long is the mississippi river",
                       QuestionClass::kNumeric},
        ClassifierCase{"how do i get to tokyo", QuestionClass::kDescription},
        ClassifierCase{"what is the population of honolulu",
                       QuestionClass::kNumeric},
        ClassifierCase{"what is the capital of japan",
                       QuestionClass::kLocation},
        ClassifierCase{"what is the name of obama 's wife",
                       QuestionClass::kHuman},
        ClassifierCase{"which city was obama born in",
                       QuestionClass::kLocation},
        ClassifierCase{"what currency is used in japan",
                       QuestionClass::kEntity},
        ClassifierCase{"barack obama 's wife", QuestionClass::kHuman},
        ClassifierCase{"the capital of japan", QuestionClass::kLocation}));

TEST(ClassifierTest, EmptyIsUnknown) {
  QuestionClassifier classifier;
  EXPECT_EQ(classifier.Classify({}), QuestionClass::kUnknown);
}

TEST(ClassifierTest, EveryClassHasAName) {
  for (QuestionClass c :
       {QuestionClass::kAbbreviation, QuestionClass::kDescription,
        QuestionClass::kEntity, QuestionClass::kHuman,
        QuestionClass::kLocation, QuestionClass::kNumeric,
        QuestionClass::kUnknown}) {
    EXPECT_STRNE(QuestionClassToString(c), "");
  }
}

// ---------- Pattern index (§5.2) ----------

TEST(PatternTest, MakePattern) {
  std::vector<std::string> tokens = {"when", "was", "michelle", "obama",
                                     "born"};
  EXPECT_EQ(MakePattern(tokens, 2, 4), "when was $e born");
  EXPECT_EQ(MakePattern(tokens, 0, 2), "$e michelle obama born");
  EXPECT_EQ(MakePattern(tokens, 0, 5), "$e");
}

/// The paper's Example 4: two "when was X born" questions where X is an
/// entity, so P("when was $e born") = 1 while P("when $e") = 0 (never a
/// valid entity replacement).
TEST(PatternTest, PaperExampleFour) {
  std::vector<PatternQuestion> corpus(2);
  corpus[0].tokens = {"when", "was", "barack", "obama", "born"};
  corpus[0].mention_spans = {{2, 4}};
  corpus[1].tokens = {"when", "was", "barack", "obama", "born"};
  corpus[1].mention_spans = {{2, 4}};
  PatternIndex index = PatternIndex::Build(corpus);

  EXPECT_DOUBLE_EQ(index.ValidProbability("when was $e born"), 1.0);
  EXPECT_DOUBLE_EQ(index.ValidProbability("when $e"), 0.0);
  auto stats = index.Stats("when was $e born");
  EXPECT_EQ(stats.fo, 2u);
  EXPECT_EQ(stats.fv, 2u);
}

TEST(PatternTest, OverGeneralPatternsArePunished) {
  // "was $e" matches both questions as a substring, but is valid in
  // neither ("was barack" is not an entity) — except in q2 where the
  // mention span happens to be exactly [1,3).
  std::vector<PatternQuestion> corpus(2);
  corpus[0].tokens = {"was", "barack", "obama", "great"};
  corpus[0].mention_spans = {{1, 3}};
  corpus[1].tokens = {"was", "michelle", "obama", "great"};
  corpus[1].mention_spans = {};  // no mention recognized here
  PatternIndex index = PatternIndex::Build(corpus);

  // fv("was $e great") = 1 (q0 mention), fo = 2 (both match by substring).
  EXPECT_DOUBLE_EQ(index.ValidProbability("was $e great"), 0.5);
}

TEST(PatternTest, UnknownPatternIsZero) {
  PatternIndex index = PatternIndex::Build({});
  EXPECT_DOUBLE_EQ(index.ValidProbability("what is $e"), 0.0);
  EXPECT_EQ(index.Stats("what is $e").fo, 0u);
}

TEST(PatternTest, FvNeverExceedsFo) {
  std::vector<PatternQuestion> corpus(3);
  corpus[0].tokens = {"who", "is", "the", "wife", "of", "barack", "obama"};
  corpus[0].mention_spans = {{5, 7}};
  corpus[1].tokens = {"who", "is", "the", "wife", "of", "bill", "gates"};
  corpus[1].mention_spans = {{5, 7}};
  corpus[2].tokens = {"who", "is", "the", "wife", "of", "the", "king"};
  corpus[2].mention_spans = {};
  PatternIndex index = PatternIndex::Build(corpus);
  auto stats = index.Stats("who is the wife of $e");
  EXPECT_LE(stats.fv, stats.fo);
  EXPECT_EQ(stats.fv, 2u);
  EXPECT_EQ(stats.fo, 3u);
}

TEST(PatternTest, LongMentionsBeyondSpanCapStillCount) {
  PatternIndex::Options options;
  options.max_span_tokens = 2;
  std::vector<PatternQuestion> corpus(1);
  corpus[0].tokens = {"about", "the", "very", "long", "entity", "name"};
  corpus[0].mention_spans = {{1, 6}};  // 5 tokens > cap
  PatternIndex index = PatternIndex::Build(corpus, options);
  auto stats = index.Stats("about $e");
  EXPECT_EQ(stats.fv, 1u);
  EXPECT_EQ(stats.fo, 1u);  // counted via the mention fallback
}

}  // namespace
}  // namespace kbqa::nlp
