#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "nlp/ner.h"
#include "nlp/pattern.h"
#include "nlp/question_classifier.h"
#include "nlp/stopwords.h"
#include "nlp/tokenizer.h"
#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"

namespace kbqa::nlp {
namespace {

// ---------- Tokenizer ----------

TEST(TokenizerTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(Tokenize("How many People are there, in Honolulu?"),
            (std::vector<std::string>{"how", "many", "people", "are", "there",
                                      "in", "honolulu"}));
}

TEST(TokenizerTest, KeepsDigitsAndInternalHyphens) {
  EXPECT_EQ(Tokenize("born in 1961 twenty-one"),
            (std::vector<std::string>{"born", "in", "1961", "twenty-one"}));
}

TEST(TokenizerTest, StripsSurroundingQuotesAndHyphens) {
  EXPECT_EQ(Tokenize("'hello' -world-"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_TRUE(Tokenize("...!!!").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, PossessiveFormsNormalizeIdentically) {
  // "obama's" and "obama 's" must produce the same token stream — template
  // matching depends on it.
  EXPECT_EQ(TokenizeQuestion("barack obama's wife"),
            TokenizeQuestion("barack obama 's wife"));
  EXPECT_EQ(TokenizeQuestion("obama's wife"),
            (std::vector<std::string>{"obama", "s", "wife"}));
}

TEST(TokenizerTest, NormalizeTextIsCanonical) {
  EXPECT_EQ(NormalizeText("  Who IS Barack Obama's wife? "),
            "who is barack obama s wife");
  EXPECT_EQ(NormalizeText("390,000"), "390 000");
}

TEST(TokenizerTest, JoinTokensRoundTrip) {
  std::vector<std::string> tokens = {"a", "b", "c"};
  EXPECT_EQ(JoinTokens(tokens), "a b c");
  EXPECT_EQ(JoinTokens({}), "");
}

// ---------- UTF-8 aware lowercasing ----------

TEST(TokenizerUtf8Test, FoldsLatin1AndLatinExtendedA) {
  EXPECT_EQ(Tokenize("José ÉCLAIR Čapek ŁÓDŹ"),
            (std::vector<std::string>{"josé", "éclair", "čapek", "łódź"}));
  // Ÿ is the one upper/lower pair split across the two blocks.
  EXPECT_EQ(Tokenize("Ÿ"), (std::vector<std::string>{"ÿ"}));
  // Turkish dotted capital İ folds to plain ASCII i (gazetteer keys don't
  // want the combining dot of the strict folding).
  EXPECT_EQ(Tokenize("İstanbul"), (std::vector<std::string>{"istanbul"}));
}

TEST(TokenizerUtf8Test, MultiplicationSignIsNotALetter) {
  // U+00D7 sits in the middle of the Latin-1 uppercase range but must not
  // fold to U+00F7 (division sign).
  EXPECT_EQ(Tokenize("3×4"), (std::vector<std::string>{"3×4"}));
}

TEST(TokenizerUtf8Test, AccentedWordsStayWholeTokens) {
  // Bytes >= 0x80 are word content: "josé" must not split after the "s"
  // the way a locale-dependent isalnum could make it.
  EXPECT_EQ(Tokenize("Où est José?"),
            (std::vector<std::string>{"où", "est", "josé"}));
}

TEST(TokenizerUtf8Test, OtherScriptsPassThroughUnchanged) {
  // Cyrillic/CJK are outside the folded blocks: preserved byte-for-byte.
  EXPECT_EQ(Tokenize("МОСКВА 北京"),
            (std::vector<std::string>{"МОСКВА", "北京"}));
}

TEST(TokenizerUtf8Test, MalformedUtf8PassesThroughBytewise) {
  // A stray continuation byte and a truncated lead byte must not be
  // dropped or mangled — copied through as-is inside their token.
  const std::string stray = std::string("ab") + '\x85' + "cd";
  ASSERT_EQ(Tokenize(stray).size(), 1u);
  EXPECT_EQ(Tokenize(stray)[0], stray);
  const std::string truncated = std::string("x") + '\xC3';
  ASSERT_EQ(Tokenize(truncated).size(), 1u);
  EXPECT_EQ(Tokenize(truncated)[0], truncated);
}

/// \uXXXX escape of `cp` as written in an N-Triples literal.
std::string UEscape(uint32_t cp) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\u%04X", cp);
  return buf;
}

TEST(TokenizerUtf8PropertyTest, EscapedKbNamesFoldLikeTheirLowercaseForms) {
  // Property over every upper/lower pair the tokenizer folds: a KB entity
  // name arriving as an N-Triples \uXXXX escape of the UPPERCASE form must
  // tokenize identically to the plain lowercase form — the invariant
  // gazetteer lookups rely on (names are interned lowercase; questions may
  // use any case).
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t cp = 0xC0; cp <= 0xDE; ++cp) {
    if (cp != 0xD7) pairs.emplace_back(cp, cp + 0x20);
  }
  for (uint32_t cp = 0x100; cp <= 0x136; cp += 2) {
    // İ (U+0130) folds to plain ASCII "i", not U+0131 — checked below.
    if (cp != 0x130) pairs.emplace_back(cp, cp + 1);
  }
  pairs.emplace_back(0x130, 'i');
  for (uint32_t cp = 0x139; cp <= 0x147; cp += 2) pairs.emplace_back(cp, cp + 1);
  for (uint32_t cp = 0x14A; cp <= 0x176; cp += 2) pairs.emplace_back(cp, cp + 1);
  pairs.emplace_back(0x178, 0xFF);
  for (uint32_t cp : {0x179u, 0x17Bu, 0x17Du}) pairs.emplace_back(cp, cp + 1);

  for (const auto& [upper, lower] : pairs) {
    const std::string line = "<e/x> <name> \"Q" + UEscape(upper) + "x\" .";
    auto parsed = rdf::ParseNTripleLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    std::string expected = "q";
    // Lowercase reference form, UTF-8 encoded by hand (every lower half is
    // either ASCII or < 0x800: two bytes).
    if (lower < 0x80) {
      expected.push_back(static_cast<char>(lower));
    } else {
      expected.push_back(static_cast<char>(0xC0 | (lower >> 6)));
      expected.push_back(static_cast<char>(0x80 | (lower & 0x3F)));
    }
    expected.push_back('x');
    const auto tokens = Tokenize(parsed.value().object);
    ASSERT_EQ(tokens.size(), 1u) << line;
    EXPECT_EQ(tokens[0], expected)
        << "U+" << std::hex << upper << " did not fold to U+" << lower;
  }
}

TEST(TokenizerUtf8Test, EscapedKbEntityFoundByGazetteerAnyCase) {
  // End-to-end satellite check: an entity whose name enters the KB via
  // N-Triples \uXXXX escapes is found by the NER regardless of question
  // casing.
  rdf::KnowledgeBase kb;
  const rdf::PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  auto parsed = rdf::ParseNTripleLine(
      "<e/jose_garcia> <name> \"Jos\\u00C9 Garc\\u00CDa\" .");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const rdf::NTriple& triple = parsed.value();
  ASSERT_TRUE(triple.object_is_literal);
  kb.AddTriple(triple.subject, triple.predicate, triple.object,
               /*object_is_literal=*/true);
  kb.Freeze();
  GazetteerNer ner(kb);

  for (const char* question :
       {"where was josé garcía born", "where was JOSÉ GARCÍA born",
        "where was JosÉ GarcÍa born"}) {
    const auto mentions = ner.FindMentions(TokenizeQuestion(question));
    ASSERT_EQ(mentions.size(), 1u) << question;
    EXPECT_EQ(mentions[0].size(), 2u) << question;
  }
}

// ---------- Stopwords ----------

TEST(StopwordsTest, FunctionWordsAreStopwords) {
  for (const char* w : {"the", "of", "is", "what", "how", "many", "'s"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
  for (const char* w : {"population", "wife", "honolulu", "capital"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

// ---------- NER ----------

class NerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::PredId name = kb_.AddPredicate("name");
    kb_.SetNamePredicate(name);
    obama_ = kb_.AddEntity("person/obama");
    ny_ = kb_.AddEntity("city/ny");
    nyc_ = kb_.AddEntity("city/nyc");
    apple_fruit_ = kb_.AddEntity("fruit/apple");
    apple_co_ = kb_.AddEntity("company/apple");
    kb_.AddTriple(obama_, name, kb_.AddLiteral("barack obama"));
    kb_.AddTriple(ny_, name, kb_.AddLiteral("new york"));
    kb_.AddTriple(nyc_, name, kb_.AddLiteral("new york city"));
    kb_.AddTriple(apple_fruit_, name, kb_.AddLiteral("apple"));
    kb_.AddTriple(apple_co_, name, kb_.AddLiteral("apple"));
    kb_.Freeze();
    ner_ = std::make_unique<GazetteerNer>(kb_);
  }

  rdf::KnowledgeBase kb_;
  rdf::TermId obama_, ny_, nyc_, apple_fruit_, apple_co_;
  std::unique_ptr<GazetteerNer> ner_;
};

TEST_F(NerTest, FindsMultiTokenMention) {
  auto mentions = ner_->FindMentions(TokenizeQuestion(
      "when was barack obama born"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].begin, 2u);
  EXPECT_EQ(mentions[0].end, 4u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{obama_}));
}

TEST_F(NerTest, LongestMatchWins) {
  auto mentions =
      ner_->FindMentions(TokenizeQuestion("i love new york city a lot"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{nyc_}));
  EXPECT_EQ(mentions[0].size(), 3u);
}

TEST_F(NerTest, AmbiguousNameYieldsAllCandidates) {
  auto mentions = ner_->FindMentions(TokenizeQuestion("what about apple"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].entities.size(), 2u);
}

TEST_F(NerTest, NoMentionsInPlainText) {
  EXPECT_TRUE(ner_->FindMentions(TokenizeQuestion("how are you today"))
                  .empty());
}

TEST_F(NerTest, MultipleMentions) {
  auto mentions = ner_->FindMentions(
      TokenizeQuestion("which has more people , new york or apple"));
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].entities, (std::vector<rdf::TermId>{ny_}));
  EXPECT_EQ(mentions[1].entities.size(), 2u);
}

TEST_F(NerTest, EntitiesForSpanExactOnly) {
  auto tokens = TokenizeQuestion("when was barack obama born");
  EXPECT_EQ(ner_->EntitiesForSpan(tokens, 2, 4),
            (std::vector<rdf::TermId>{obama_}));
  EXPECT_TRUE(ner_->EntitiesForSpan(tokens, 2, 5).empty());
  EXPECT_TRUE(ner_->EntitiesForSpan(tokens, 3, 3).empty());  // empty span
}

TEST_F(NerTest, LooksLikeNumber) {
  EXPECT_TRUE(LooksLikeNumber("1961"));
  EXPECT_FALSE(LooksLikeNumber("19a"));
  EXPECT_FALSE(LooksLikeNumber(""));
}

// ---------- Question classifier ----------

struct ClassifierCase {
  const char* question;
  QuestionClass expected;
};

class ClassifierTest : public ::testing::TestWithParam<ClassifierCase> {};

TEST_P(ClassifierTest, ClassifiesCase) {
  QuestionClassifier classifier;
  EXPECT_EQ(classifier.Classify(TokenizeQuestion(GetParam().question)),
            GetParam().expected)
      << GetParam().question;
}

INSTANTIATE_TEST_SUITE_P(
    UiucCases, ClassifierTest,
    ::testing::Values(
        ClassifierCase{"who is the wife of barack obama",
                       QuestionClass::kHuman},
        ClassifierCase{"whose idea was it", QuestionClass::kHuman},
        ClassifierCase{"where was barack obama born",
                       QuestionClass::kLocation},
        ClassifierCase{"when was barack obama born", QuestionClass::kNumeric},
        ClassifierCase{"why is the sky blue", QuestionClass::kDescription},
        ClassifierCase{"how many people are there in honolulu",
                       QuestionClass::kNumeric},
        ClassifierCase{"how long is the mississippi river",
                       QuestionClass::kNumeric},
        ClassifierCase{"how do i get to tokyo", QuestionClass::kDescription},
        ClassifierCase{"what is the population of honolulu",
                       QuestionClass::kNumeric},
        ClassifierCase{"what is the capital of japan",
                       QuestionClass::kLocation},
        ClassifierCase{"what is the name of obama 's wife",
                       QuestionClass::kHuman},
        ClassifierCase{"which city was obama born in",
                       QuestionClass::kLocation},
        ClassifierCase{"what currency is used in japan",
                       QuestionClass::kEntity},
        ClassifierCase{"barack obama 's wife", QuestionClass::kHuman},
        ClassifierCase{"the capital of japan", QuestionClass::kLocation}));

TEST(ClassifierTest, EmptyIsUnknown) {
  QuestionClassifier classifier;
  EXPECT_EQ(classifier.Classify({}), QuestionClass::kUnknown);
}

TEST(ClassifierTest, EveryClassHasAName) {
  for (QuestionClass c :
       {QuestionClass::kAbbreviation, QuestionClass::kDescription,
        QuestionClass::kEntity, QuestionClass::kHuman,
        QuestionClass::kLocation, QuestionClass::kNumeric,
        QuestionClass::kUnknown}) {
    EXPECT_STRNE(QuestionClassToString(c), "");
  }
}

// ---------- Pattern index (§5.2) ----------

TEST(PatternTest, MakePattern) {
  std::vector<std::string> tokens = {"when", "was", "michelle", "obama",
                                     "born"};
  EXPECT_EQ(MakePattern(tokens, 2, 4), "when was $e born");
  EXPECT_EQ(MakePattern(tokens, 0, 2), "$e michelle obama born");
  EXPECT_EQ(MakePattern(tokens, 0, 5), "$e");
}

/// The paper's Example 4: two "when was X born" questions where X is an
/// entity, so P("when was $e born") = 1 while P("when $e") = 0 (never a
/// valid entity replacement).
TEST(PatternTest, PaperExampleFour) {
  std::vector<PatternQuestion> corpus(2);
  corpus[0].tokens = {"when", "was", "barack", "obama", "born"};
  corpus[0].mention_spans = {{2, 4}};
  corpus[1].tokens = {"when", "was", "barack", "obama", "born"};
  corpus[1].mention_spans = {{2, 4}};
  PatternIndex index = PatternIndex::Build(corpus);

  EXPECT_DOUBLE_EQ(index.ValidProbability("when was $e born"), 1.0);
  EXPECT_DOUBLE_EQ(index.ValidProbability("when $e"), 0.0);
  auto stats = index.Stats("when was $e born");
  EXPECT_EQ(stats.fo, 2u);
  EXPECT_EQ(stats.fv, 2u);
}

TEST(PatternTest, OverGeneralPatternsArePunished) {
  // "was $e" matches both questions as a substring, but is valid in
  // neither ("was barack" is not an entity) — except in q2 where the
  // mention span happens to be exactly [1,3).
  std::vector<PatternQuestion> corpus(2);
  corpus[0].tokens = {"was", "barack", "obama", "great"};
  corpus[0].mention_spans = {{1, 3}};
  corpus[1].tokens = {"was", "michelle", "obama", "great"};
  corpus[1].mention_spans = {};  // no mention recognized here
  PatternIndex index = PatternIndex::Build(corpus);

  // fv("was $e great") = 1 (q0 mention), fo = 2 (both match by substring).
  EXPECT_DOUBLE_EQ(index.ValidProbability("was $e great"), 0.5);
}

TEST(PatternTest, UnknownPatternIsZero) {
  PatternIndex index = PatternIndex::Build({});
  EXPECT_DOUBLE_EQ(index.ValidProbability("what is $e"), 0.0);
  EXPECT_EQ(index.Stats("what is $e").fo, 0u);
}

TEST(PatternTest, FvNeverExceedsFo) {
  std::vector<PatternQuestion> corpus(3);
  corpus[0].tokens = {"who", "is", "the", "wife", "of", "barack", "obama"};
  corpus[0].mention_spans = {{5, 7}};
  corpus[1].tokens = {"who", "is", "the", "wife", "of", "bill", "gates"};
  corpus[1].mention_spans = {{5, 7}};
  corpus[2].tokens = {"who", "is", "the", "wife", "of", "the", "king"};
  corpus[2].mention_spans = {};
  PatternIndex index = PatternIndex::Build(corpus);
  auto stats = index.Stats("who is the wife of $e");
  EXPECT_LE(stats.fv, stats.fo);
  EXPECT_EQ(stats.fv, 2u);
  EXPECT_EQ(stats.fo, 3u);
}

TEST(PatternTest, LongMentionsBeyondSpanCapStillCount) {
  PatternIndex::Options options;
  options.max_span_tokens = 2;
  std::vector<PatternQuestion> corpus(1);
  corpus[0].tokens = {"about", "the", "very", "long", "entity", "name"};
  corpus[0].mention_spans = {{1, 6}};  // 5 tokens > cap
  PatternIndex index = PatternIndex::Build(corpus, options);
  auto stats = index.Stats("about $e");
  EXPECT_EQ(stats.fv, 1u);
  EXPECT_EQ(stats.fo, 1u);  // counted via the mention fallback
}

}  // namespace
}  // namespace kbqa::nlp
