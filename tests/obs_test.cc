// Tests for the observability substrate: sharded-metric determinism,
// histogram bucket math, snapshot JSON round-trips, trace export, span
// sampling, and the runtime kill switch.

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kbqa {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b-1].
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3);
  EXPECT_EQ(obs::Histogram::BucketOf(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketOf(1024), 11);
  EXPECT_EQ(obs::Histogram::BucketOf(UINT64_MAX), 63);

  EXPECT_EQ(obs::Histogram::UpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::UpperBound(1), 1u);
  EXPECT_EQ(obs::Histogram::UpperBound(2), 3u);
  EXPECT_EQ(obs::Histogram::UpperBound(10), 1023u);
  EXPECT_EQ(obs::Histogram::UpperBound(63), UINT64_MAX);

  // Every representable value falls inside its bucket's range.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 100ull, 4096ull, 1ull << 40}) {
    const int b = obs::Histogram::BucketOf(v);
    EXPECT_LE(v, obs::Histogram::UpperBound(b)) << v;
    if (b > 0) EXPECT_GT(v, obs::Histogram::UpperBound(b - 1)) << v;
  }
}

TEST(HistogramTest, CountSumAndQuantiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("h");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v);
  EXPECT_EQ(h->Count(), 100u);
  EXPECT_EQ(h->Sum(), 5050u);

  obs::MetricsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("h");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 100u);
  EXPECT_DOUBLE_EQ(entry->Mean(), 50.5);
  // The log-bucket quantile is the upper bound of the covering bucket:
  // the median of 1..100 lands in bucket [32, 63].
  EXPECT_EQ(entry->ApproxQuantile(0.5), 63u);
  EXPECT_EQ(entry->ApproxQuantile(1.0), 127u);

  h->Reset();
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0u);
}

TEST(HistogramTest, ValueAtQuantileTracksExactReference) {
  // Exact reference: 1..1024 uniform, so the true nearest-rank quantile
  // is ceil(q * 1024). The interpolated estimate must land inside the
  // covering power-of-two bucket (error < bucket width) and never be
  // looser than ApproxQuantile's bucket-ceiling answer.
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("h");
  for (uint64_t v = 1; v <= 1024; ++v) h->Record(v);
  obs::MetricsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.histogram("h");
  ASSERT_NE(entry, nullptr);
  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const uint64_t exact = static_cast<uint64_t>(
        std::ceil(q * 1024.0));
    const uint64_t estimate = entry->ValueAtQuantile(q);
    const int bucket = obs::Histogram::BucketOf(exact);
    const uint64_t lower =
        bucket == 0 ? 0 : obs::Histogram::UpperBound(bucket - 1) + 1;
    const uint64_t upper = obs::Histogram::UpperBound(bucket);
    EXPECT_GE(estimate, lower) << "q=" << q;
    EXPECT_LE(estimate, upper) << "q=" << q;
    EXPECT_LE(estimate, entry->ApproxQuantile(q)) << "q=" << q;
    const uint64_t width = upper - lower + 1;
    const uint64_t error =
        estimate > exact ? estimate - exact : exact - estimate;
    EXPECT_LT(error, width) << "q=" << q;
  }
  // Within a bucket the uniform mass makes interpolation much tighter
  // than the ceiling: the exact median 512 opens bucket [512, 1023], so
  // the ceiling answer overshoots to 1023 while interpolation lands
  // within a few counts of 512.
  EXPECT_EQ(entry->ApproxQuantile(0.5), 1023u);
  EXPECT_GE(entry->ValueAtQuantile(0.5), 512u);
  EXPECT_LE(entry->ValueAtQuantile(0.5), 530u);
}

TEST(HistogramTest, ValueAtQuantileEdgeCases) {
  obs::MetricsRegistry registry;
  obs::Histogram* zeros = registry.GetHistogram("zeros");
  for (int i = 0; i < 10; ++i) zeros->Record(0);
  obs::Histogram* point = registry.GetHistogram("point");
  for (int i = 0; i < 10; ++i) point->Record(1);  // bucket [1,1]
  obs::Histogram* huge = registry.GetHistogram("huge");
  huge->Record(UINT64_MAX);
  obs::Histogram* empty = registry.GetHistogram("empty");
  obs::MetricsSnapshot snap = registry.Snapshot();
  // The zero bucket is a point mass at 0.
  EXPECT_EQ(snap.histogram("zeros")->ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(snap.histogram("zeros")->ValueAtQuantile(1.0), 0u);
  // A single-value bucket of width 1 interpolates to that value exactly.
  EXPECT_EQ(snap.histogram("point")->ValueAtQuantile(0.5), 1u);
  // The overflow bucket has no finite width: report its floor.
  EXPECT_EQ(snap.histogram("huge")->ValueAtQuantile(0.99),
            obs::Histogram::UpperBound(62) + 1);
  EXPECT_EQ(snap.histogram("empty")->ValueAtQuantile(0.5), 0u);
}

TEST(HistogramTest, MaxQuantileNeverBelowRecordedMax) {
  // Regression: the max quantile used to interpolate to the covering
  // bucket's *lower* bound on sparse histograms, reporting a "max" below a
  // recorded value. q=1.0 must come back >= the largest recorded value.
  obs::MetricsRegistry registry;
  obs::Histogram* single = registry.GetHistogram("single");
  single->Record(1500);  // bucket [1024, 2047]
  obs::Histogram* huge = registry.GetHistogram("huge");
  huge->Record(UINT64_MAX);  // the unbounded overflow bucket
  obs::Histogram* pair = registry.GetHistogram("pair");
  pair->Record(3);
  pair->Record(40);  // bucket [32, 63]
  obs::MetricsSnapshot snap = registry.Snapshot();
  // Single sample: sum==max, so the clamp reports the value exactly.
  EXPECT_EQ(snap.histogram("single")->ValueAtQuantile(1.0), 1500u);
  // Values past 2^62 saturate the sum cap but must still not round down
  // below the bucket floor.
  EXPECT_GE(snap.histogram("huge")->ValueAtQuantile(1.0),
            obs::Histogram::UpperBound(62) + 1);
  // Multi-sample: sum (43) caps the top-bucket estimate, still >= 40.
  EXPECT_GE(snap.histogram("pair")->ValueAtQuantile(1.0), 40u);
  EXPECT_LE(snap.histogram("pair")->ValueAtQuantile(1.0), 43u);
  // Lower quantiles keep their interpolated (not clamped) behavior.
  EXPECT_LE(snap.histogram("pair")->ValueAtQuantile(0.25), 3u);
}

// The tentpole determinism contract: a snapshot depends only on the set of
// updates applied, never on how many threads applied them or which shard
// cell each landed in.
TEST(MetricsDeterminism, SnapshotIndependentOfThreadCount) {
  std::vector<obs::MetricsSnapshot> snaps;
  for (int threads : {1, 2, 8}) {
    obs::MetricsRegistry registry;
    obs::Counter* counter = registry.GetCounter("det.counter");
    obs::Histogram* histogram = registry.GetHistogram("det.histogram");
    obs::Gauge* gauge = registry.GetGauge("det.gauge");
    ThreadPool pool(threads);
    pool.RunShards(64, [&](size_t shard) {
      counter->Add(shard + 1);
      histogram->Record(shard * 37);
      histogram->Record(1u << (shard % 20));
    });
    gauge->Set(2.5);
    snaps.push_back(registry.Snapshot());
  }
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0], snaps[1]);
  EXPECT_EQ(snaps[0], snaps[2]);
  const auto* c = snaps[0].counter("det.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 64u * 65u / 2u);
}

TEST(MetricsSnapshotTest, JsonRoundTrip) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(42);
  registry.GetCounter("name with \"quotes\" and \\slashes\\")->Add(7);
  registry.GetGauge("g.pi")->Set(3.14159265358979);
  registry.GetGauge("g.negative")->Set(-0.125);
  obs::Histogram* h = registry.GetHistogram("h.latency");
  h->Record(0);
  h->Record(17);
  h->Record(123456789);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  obs::MetricsSnapshot parsed;
  ASSERT_TRUE(obs::MetricsSnapshot::FromJson(json, &parsed)) << json;
  EXPECT_EQ(snap, parsed);
  // Round-tripping the re-serialized form is a fixed point.
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(MetricsSnapshotTest, FromJsonRejectsMalformed) {
  obs::MetricsSnapshot out;
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson("", &out));
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson("{", &out));
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson("[]", &out));
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson(
      "{\"counters\": [{\"name\": \"x\"}]}", &out));
  // Trailing garbage after a valid document is an error too.
  const std::string valid = obs::MetricsSnapshot().ToJson();
  EXPECT_TRUE(obs::MetricsSnapshot::FromJson(valid, &out));
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson(valid + "x", &out));
}

TEST(MetricsRegistryTest, RuntimeKillSwitchDropsUpdates) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("kill.counter");
  obs::Histogram* h = registry.GetHistogram("kill.histogram");
  const bool was_enabled = obs::MetricsRegistry::enabled();
  obs::MetricsRegistry::set_enabled(false);
  c->Add(5);
  h->Record(99);
  obs::MetricsRegistry::set_enabled(true);
  c->Add(3);
  h->Record(7);
  obs::MetricsRegistry::set_enabled(was_enabled);
  EXPECT_EQ(c->Value(), 3u);
  EXPECT_EQ(h->Count(), 1u);
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("same");
  obs::Counter* b = registry.GetCounter("same");
  EXPECT_EQ(a, b);
  a->Add(1);
  a->Add(1);
  EXPECT_EQ(b->Value(), 2u);
  registry.Reset();
  EXPECT_EQ(b->Value(), 0u);
}

TEST(ScopedTimerTest, RecordsIntoHistogramOnDestruction) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("scoped.ns");
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  }
  EXPECT_EQ(h->Count(), 1u);
}

TEST(ExpositionTest, RendersMetricsTable) {
  obs::MetricsRegistry registry;
  registry.GetCounter("render.counter")->Add(5);
  registry.GetGauge("render.gauge")->Set(1.5);
  registry.GetHistogram("render.histogram")->Record(1000);
  std::ostringstream os;
  obs::RenderMetricsTable(registry.Snapshot(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("render.counter"), std::string::npos);
  EXPECT_NE(out.find("render.gauge"), std::string::npos);
  EXPECT_NE(out.find("render.histogram"), std::string::npos);
}

#ifdef KBQA_OBS_DISABLED

TEST(TracingTest, MacrosCompiledOut) {
  GTEST_SKIP() << "instrumentation macros are compiled out";
}

#else  // !KBQA_OBS_DISABLED

// Extracts the "name" values from a Chrome trace-event JSON document, in
// document order.
std::vector<std::string> EventNames(const std::string& json) {
  std::vector<std::string> names;
  const std::string key = "\"name\": \"";
  for (size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos)) {
    pos += key.size();
    const size_t end = json.find('"', pos);
    names.push_back(json.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

// Golden structure of a single-threaded trace: events sorted by begin
// time, so nesting order is exactly the source order of span entry.
TEST(TracingTest, ChromeTraceGoldenStructure) {
  obs::MetricsRegistry::set_enabled(true);
  obs::Tracing::Start();
  {
    KBQA_TRACE_SPAN("golden.outer");
    KBQA_TRACE_DETAIL_WINDOW();  // fires unconditionally while tracing
    { KBQA_TRACE_SPAN("golden.inner"); }
    { KBQA_TRACE_SPAN_SAMPLED("golden.sampled"); }
  }
  obs::Tracing::Stop();
  EXPECT_EQ(obs::Tracing::CollectedEvents(), 3u);

  std::ostringstream os;
  obs::Tracing::ExportChromeTrace(os);
  const std::string json = os.str();

  EXPECT_EQ(EventNames(json),
            (std::vector<std::string>{"golden.outer", "golden.inner",
                                      "golden.sampled"}));
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"kbqa\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\": 0"), std::string::npos);

  // The spans also fed their histograms in the global registry.
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  for (const char* name :
       {"span.golden.outer", "span.golden.inner", "span.golden.sampled"}) {
    const auto* h = snap.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->count, 1u) << name;
  }
}

// Regression for the export-during-recording race: ExportChromeTrace may
// overlap live span recording (an operator can dump a trace mid-request).
// The ring slots are individually atomic, so a concurrent export must
// produce well-formed JSON — possibly missing the in-flight row, never a
// torn or broken one — and a quiescent export after Stop() is exact.
TEST(TracingTest, ExportWhileRecordingIsWellFormed) {
  obs::MetricsRegistry::set_enabled(true);
  obs::Tracing::Start();
  constexpr size_t kSpans = 5000;  // < ring capacity: nothing overwritten
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (size_t i = 0; i < kSpans; ++i) {
      KBQA_TRACE_SPAN("live.span");
    }
    writer_done.store(true, std::memory_order_release);
  });
  do {
    std::ostringstream os;
    obs::Tracing::ExportChromeTrace(os);
    const std::string json = os.str();
    ASSERT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    ASSERT_EQ(json.back(), '\n');
    // Every emitted row is complete: a torn slot is skipped, not mangled.
    for (const std::string& name : EventNames(json)) {
      ASSERT_EQ(name, "live.span");
    }
  } while (!writer_done.load(std::memory_order_acquire));
  writer.join();
  obs::Tracing::Stop();

  // Quiescent export is exact: every recorded span, none lost or torn.
  EXPECT_EQ(obs::Tracing::CollectedEvents(), kSpans);
  std::ostringstream os;
  obs::Tracing::ExportChromeTrace(os);
  EXPECT_EQ(EventNames(os.str()).size(), kSpans);
}

TEST(TracingTest, SampledSpansRecordOnlyInFiringDetailWindows) {
  ASSERT_FALSE(obs::Tracing::active());
  obs::MetricsRegistry::set_enabled(true);
  obs::MetricsRegistry::Global().GetHistogram("span.sampling.probe")->Reset();

  // Outside any detail window a sampled site never records.
  for (int i = 0; i < 100; ++i) {
    KBQA_TRACE_SPAN_SAMPLED("sampling.probe");
  }
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetHistogram("span.sampling.probe")
                ->Count(),
            0u);

  const unsigned old_shift = obs::Tracing::sample_shift();
  // 1 in 4 windows fire; SetSampleShift resets this thread's countdown,
  // so the count over 400 request-shaped iterations is exact.
  obs::Tracing::SetSampleShift(2);
  for (int i = 0; i < 400; ++i) {
    obs::DetailWindow window;
    KBQA_TRACE_SPAN_SAMPLED("sampling.probe");
  }
  obs::Tracing::SetSampleShift(old_shift);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetHistogram("span.sampling.probe")
                ->Count(),
            100u);
}

TEST(TracingTest, WriteSpanSummaryListsTopSpans) {
  obs::MetricsRegistry::set_enabled(true);
  { KBQA_TRACE_SPAN("summary.span"); }
  std::ostringstream os;
  obs::Tracing::WriteSpanSummary(os, 100);
  EXPECT_NE(os.str().find("summary.span"), std::string::npos);
}

// ---- wide events (DESIGN.md §8) ----------------------------------------

TEST(WideEventTest, RecordDrainRoundTrip) {
  obs::MetricsRegistry::set_enabled(true);
  obs::WideEvents::ResetForTest();
  obs::WideEvent a;
  a.trace_id = 7;
  a.admit_ns = 100;
  a.outcome = obs::WideOutcome::kAnswered;
  a.has_deadline = true;
  a.batch_size = 3;
  a.question_bytes = 42;
  a.queue_wait_ns = 1000;
  a.batch_wait_ns = 200;
  a.service_ns = 5000;
  a.total_ns = 6200;
  a.deadline_budget_ns = -1500;  // negative budgets survive the bit-cast
  a.stages[static_cast<size_t>(obs::WideStage::kNer)] = {111, 1};
  a.stages[static_cast<size_t>(obs::WideStage::kRank)] = {222, 2};
  a.value_cache_hits = 9;
  a.block_cache_misses = 4;
  a.blocks_decoded = 4;
  obs::WideEvent b;
  b.trace_id = 8;
  b.admit_ns = 50;  // earlier admission sorts first
  b.outcome = obs::WideOutcome::kShedExpired;
  obs::WideEvents::Record(a);
  obs::WideEvents::Record(b);
  EXPECT_EQ(obs::WideEvents::TotalRecorded(), 2u);

  const std::vector<obs::WideEvent> drained = obs::WideEvents::Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].trace_id, 8u);
  EXPECT_EQ(drained[1].trace_id, 7u);
  const obs::WideEvent& got = drained[1];
  EXPECT_EQ(got.outcome, obs::WideOutcome::kAnswered);
  EXPECT_TRUE(got.has_deadline);
  EXPECT_EQ(got.batch_size, 3u);
  EXPECT_EQ(got.question_bytes, 42u);
  EXPECT_EQ(got.queue_wait_ns, 1000u);
  EXPECT_EQ(got.batch_wait_ns, 200u);
  EXPECT_EQ(got.service_ns, 5000u);
  EXPECT_EQ(got.total_ns, 6200u);
  EXPECT_EQ(got.deadline_budget_ns, -1500);
  EXPECT_EQ(got.stages[static_cast<size_t>(obs::WideStage::kNer)].ns, 111u);
  EXPECT_EQ(got.stages[static_cast<size_t>(obs::WideStage::kNer)].count, 1u);
  EXPECT_EQ(got.stages[static_cast<size_t>(obs::WideStage::kRank)].count, 2u);
  EXPECT_EQ(got.value_cache_hits, 9u);
  EXPECT_EQ(got.block_cache_misses, 4u);
  EXPECT_EQ(got.blocks_decoded, 4u);

  // A drain consumes: nothing left.
  EXPECT_TRUE(obs::WideEvents::Drain().empty());
}

TEST(WideEventTest, JsonLineCarriesSchema) {
  obs::WideEvent e;
  e.trace_id = 12;
  e.outcome = obs::WideOutcome::kDeadlineExceeded;
  e.deadline_budget_ns = -5;
  e.stages[static_cast<size_t>(obs::WideStage::kScore)] = {77, 3};
  const std::string json = e.ToJsonLine();
  for (const char* key :
       {"\"trace_id\":12", "\"outcome\":\"deadline_exceeded\"",
        "\"deadline_budget_ns\":-5", "\"queue_wait_ns\":", "\"batch_wait_ns\":",
        "\"service_ns\":", "\"total_ns\":", "\"stages\":{\"ner\":",
        "\"score\":{\"ns\":77,\"count\":3}", "\"value_cache\":{\"hits\":",
        "\"answer_cache\":", "\"block_cache\":", "\"decoded\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(WideEventTest, DropCountsEventsOverwrittenBeforeDrain) {
  obs::MetricsRegistry::set_enabled(true);
  obs::WideEvents::ResetForTest();
  obs::WideEvent e;
  const size_t extra = 100;
  for (size_t i = 0; i < obs::WideEvents::kRingCapacity + extra; ++i) {
    e.trace_id = i + 1;
    obs::WideEvents::Record(e);
  }
  const std::vector<obs::WideEvent> drained = obs::WideEvents::Drain();
  EXPECT_EQ(drained.size(), obs::WideEvents::kRingCapacity);
  EXPECT_EQ(obs::WideEvents::Dropped(), extra);
  // The survivors are the newest capacity-many events.
  EXPECT_EQ(drained.front().trace_id, extra + 1);
}

TEST(WideEventTest, SamplePeriodIsExactPerThread) {
  obs::MetricsRegistry::set_enabled(true);
  obs::WideEvents::ResetForTest();
  obs::WideEvents::SetSamplePeriod(4);
  int sampled = 0;
  // One-in-four with a per-thread countdown: exactly 100 of 400 regardless
  // of the countdown's starting phase.
  for (int i = 0; i < 400; ++i) sampled += obs::WideEvents::Sample() ? 1 : 0;
  EXPECT_EQ(sampled, 100);
  obs::WideEvents::SetSamplePeriod(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(obs::WideEvents::Sample());
  obs::WideEvents::SetSamplePeriod(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(obs::WideEvents::Sample());
  obs::WideEvents::ResetForTest();
}

TEST(WideEventTest, RecentIsNonConsumingAndBounded) {
  obs::MetricsRegistry::set_enabled(true);
  obs::WideEvents::ResetForTest();
  obs::WideEvent e;
  for (uint64_t i = 0; i < 10; ++i) {
    e.trace_id = i + 1;
    e.admit_ns = i + 1;
    obs::WideEvents::Record(e);
  }
  EXPECT_EQ(obs::WideEvents::Recent(100).size(), 10u);
  const std::vector<obs::WideEvent> last3 = obs::WideEvents::Recent(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.back().trace_id, 10u);  // newest last
  // Recent did not consume: a drain still sees everything.
  EXPECT_EQ(obs::WideEvents::Drain().size(), 10u);
}

TEST(RequestContextTest, ChainedMarksAreDisjointAndBounded) {
  obs::RequestContext ctx;
  // An unanchored context charges nothing on its first mark.
  ctx.Mark(obs::WideStage::kNer);
  EXPECT_EQ(ctx.stages[static_cast<size_t>(obs::WideStage::kNer)].ns, 0u);
  EXPECT_EQ(ctx.stages[static_cast<size_t>(obs::WideStage::kNer)].count, 1u);

  obs::RequestContext timed;
  const uint64_t start = obs::NowSteadyNs();
  timed.StartClockAt(start);
  for (int i = 0; i < 100; ++i) timed.Mark(obs::WideStage::kTemplateMatch);
  const uint64_t mid = obs::NowSteadyNs();
  timed.AddTimedSince(obs::WideStage::kValueLookup, mid);
  timed.Mark(obs::WideStage::kScore);
  const uint64_t elapsed = obs::NowSteadyNs() - start;
  // Chained intervals are disjoint, so their sum is bounded by wall time
  // measured on the same clock — the invariant the server relies on.
  EXPECT_LE(timed.StageNsSum(), elapsed);
}

TEST(ScopedRequestContextTest, NullBindingDoesNotMaskOuter) {
  obs::RequestContext outer;
  EXPECT_EQ(obs::CurrentRequestContext(), nullptr);
  {
    obs::ScopedRequestContext bind_outer(&outer);
    EXPECT_EQ(obs::CurrentRequestContext(), &outer);
    {
      // A nested unsampled request (null ctx) must not hide the outer one.
      obs::ScopedRequestContext bind_null(nullptr);
      EXPECT_EQ(obs::CurrentRequestContext(), &outer);
    }
    EXPECT_EQ(obs::CurrentRequestContext(), &outer);
  }
  EXPECT_EQ(obs::CurrentRequestContext(), nullptr);
}

// ---- SLO burn-rate monitor ----------------------------------------------

constexpr uint64_t kNsPerS = 1'000'000'000ull;

obs::SloSpec TestSpec() {
  obs::SloSpec spec;
  spec.availability_target = 0.99;  // 1% error budget
  spec.latency_threshold_ns = 1'000'000;
  spec.short_window_s = 60;
  spec.long_window_s = 600;
  spec.burn_rate_threshold = 9.5;
  return spec;
}

TEST(SloMonitorTest, BurnRateAndMultiWindowFiring) {
  obs::SloMonitor slo(TestSpec());
  const uint64_t t0 = 10'000 * kNsPerS;
  // 90 good + 10 bad in the last minute: 10% bad / 1% budget = burn 10.
  for (int i = 0; i < 90; ++i) slo.Record(true, t0);
  for (int i = 0; i < 10; ++i) slo.Record(false, t0);
  obs::SloEvaluation eval = slo.Evaluate(t0);
  EXPECT_NEAR(eval.short_burn_rate, 10.0, 1e-9);
  EXPECT_NEAR(eval.long_burn_rate, 10.0, 1e-9);
  EXPECT_EQ(eval.short_good, 90u);
  EXPECT_EQ(eval.short_bad, 10u);
  EXPECT_TRUE(eval.firing);  // both windows above threshold

  // Ten minutes later the bad burst has left the short window but not the
  // long one: the multi-window rule stops firing (incident recovered).
  const uint64_t t1 = t0 + 300 * kNsPerS;
  for (int i = 0; i < 100; ++i) slo.Record(true, t1);
  eval = slo.Evaluate(t1);
  EXPECT_DOUBLE_EQ(eval.short_burn_rate, 0.0);
  EXPECT_GT(eval.long_burn_rate, 0.0);
  EXPECT_FALSE(eval.firing);

  // Past the long window everything expires.
  eval = slo.Evaluate(t1 + 601 * kNsPerS);
  EXPECT_DOUBLE_EQ(eval.long_burn_rate, 0.0);
  EXPECT_EQ(eval.long_good + eval.long_bad, 0u);

  // Lifetime totals never expire.
  EXPECT_EQ(slo.TotalGood(), 190u);
  EXPECT_EQ(slo.TotalBad(), 10u);
}

TEST(SloMonitorTest, RecordRequestAppliesLatencyCriterion) {
  obs::SloMonitor slo(TestSpec());
  const uint64_t t0 = 20'000 * kNsPerS;
  slo.RecordRequest(/*ok=*/true, /*total_latency_ns=*/500'000, t0);   // good
  slo.RecordRequest(/*ok=*/true, /*total_latency_ns=*/2'000'000, t0);  // slow
  slo.RecordRequest(/*ok=*/false, /*total_latency_ns=*/100, t0);       // error
  const obs::SloEvaluation eval = slo.Evaluate(t0);
  EXPECT_EQ(eval.short_good, 1u);
  EXPECT_EQ(eval.short_bad, 2u);
  EXPECT_EQ(slo.TotalGood(), 1u);
  EXPECT_EQ(slo.TotalBad(), 2u);
}

TEST(SloMonitorTest, PublishGaugesExportsSloSeries) {
  obs::MetricsRegistry::set_enabled(true);
  obs::SloMonitor slo(TestSpec());
  const uint64_t t0 = 30'000 * kNsPerS;
  for (int i = 0; i < 9; ++i) slo.Record(true, t0);
  slo.Record(false, t0);
  slo.PublishGauges(t0);
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const auto gauge = [&snap](const std::string& name) -> double {
    for (const auto& g : snap.gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1;
  };
  EXPECT_NEAR(gauge("slo.burn_rate_short"), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(gauge("slo.window_short_good"), 9.0);
  EXPECT_DOUBLE_EQ(gauge("slo.window_short_bad"), 1.0);
  EXPECT_DOUBLE_EQ(gauge("slo.firing"), 1.0);
  EXPECT_DOUBLE_EQ(gauge("slo.good_total"), 9.0);
  EXPECT_DOUBLE_EQ(gauge("slo.bad_total"), 1.0);
}

#endif  // KBQA_OBS_DISABLED

}  // namespace
}  // namespace kbqa
