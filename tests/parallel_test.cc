// The threading layer's determinism contract (DESIGN.md "Threading model &
// determinism"): the thread pool's static sharding, bit-identical EM
// training for any thread count, AnswerAll == Answer per question, and the
// online value cache being unobservable in results.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <numeric>
#include <string>
#include <vector>

#include "core/kbqa_system.h"
#include "core/online.h"
#include "eval/experiment.h"
#include "eval/runner.h"
#include "nlp/tokenizer.h"
#include "util/thread_pool.h"

namespace kbqa {
namespace {

// ---------- ThreadPool / sharding primitives ----------

TEST(ShardOfTest, PartitionsRangeContiguously) {
  for (size_t n : {0u, 1u, 7u, 32u, 100u, 1001u}) {
    for (size_t shards : {1u, 2u, 3u, 32u}) {
      size_t expected_begin = 0;
      for (size_t s = 0; s < shards; ++s) {
        ShardRange r = ShardOf(n, s, shards);
        EXPECT_EQ(r.begin, expected_begin) << n << "/" << shards << "#" << s;
        EXPECT_LE(r.begin, r.end);
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.RunShards(hits.size(), [&](size_t shard) { ++hits[shard]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunShards(16, [&](size_t shard) { sum += static_cast<long>(shard); });
  }
  EXPECT_EQ(sum.load(), 50 * (15 * 16 / 2));
}

TEST(ParallelForTest, CoversRangeWithLocalWrites) {
  ThreadPool pool(4);
  std::vector<int> marks(1000, 0);
  ParallelFor(pool, marks.size(), 32, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) marks[i] += 1;
  });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), 1000);
}

TEST(ParallelReduceTest, MergesInShardOrderForAnyPoolSize) {
  // The merged sequence must be 0..n-1 in order regardless of threads —
  // the property the EM reduction's bit-identity rests on.
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<size_t> merged = ParallelReduce(
        pool, size_t{500}, size_t{13}, std::vector<size_t>{},
        [](size_t, size_t begin, size_t end) {
          std::vector<size_t> part;
          for (size_t i = begin; i < end; ++i) part.push_back(i);
          return part;
        },
        [](std::vector<size_t>& acc, std::vector<size_t>&& part) {
          acc.insert(acc.end(), part.begin(), part.end());
        });
    ASSERT_EQ(merged.size(), 500u);
    for (size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], i);
  }
}

// ---------- End-to-end determinism over a trained system ----------

class ParallelSystemTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }

  static std::vector<std::string> BenchmarkQuestions(size_t n, uint64_t seed) {
    corpus::BenchmarkConfig config;
    config.num_questions = n;
    config.seed = seed;
    std::vector<std::string> questions;
    for (const corpus::QaPair& pair :
         corpus::GenerateBenchmark(experiment().world(), config)
             .questions.pairs) {
      questions.push_back(pair.question);
    }
    return questions;
  }
};

TEST_F(ParallelSystemTest, TrainingIsBitIdenticalAcrossThreadCounts) {
  // The shared experiment trains with the default single thread; retrain
  // with 2 and 8 threads and demand bit-identical θ, template ids,
  // frequencies, and per-iteration log-likelihoods.
  const core::TemplateStore& reference =
      experiment().kbqa().template_store();
  const core::EmStats& ref_stats = experiment().kbqa().em_stats();

  for (int threads : {2, 8}) {
    core::KbqaOptions options = experiment().kbqa().options();
    options.em.num_threads = threads;
    core::KbqaSystem system(&experiment().world(), options);
    ASSERT_TRUE(system.Train(experiment().train_corpus()).ok());

    const core::TemplateStore& store = system.template_store();
    const core::EmStats& stats = system.em_stats();
    ASSERT_EQ(store.num_templates(), reference.num_templates())
        << threads << " threads";
    for (core::TemplateId t = 0; t < store.num_templates(); ++t) {
      EXPECT_EQ(store.TemplateText(t), reference.TemplateText(t));
      EXPECT_EQ(store.Frequency(t), reference.Frequency(t));
      auto dist = store.Distribution(t);
      auto ref_dist = reference.Distribution(t);
      ASSERT_EQ(dist.size(), ref_dist.size()) << store.TemplateText(t);
      for (size_t i = 0; i < dist.size(); ++i) {
        EXPECT_EQ(dist[i].path, ref_dist[i].path);
        EXPECT_EQ(dist[i].probability, ref_dist[i].probability)
            << store.TemplateText(t) << " entry " << i << " (bit-exact)";
      }
    }
    EXPECT_EQ(stats.num_observations, ref_stats.num_observations);
    EXPECT_EQ(stats.iterations, ref_stats.iterations);
    ASSERT_EQ(stats.log_likelihood.size(), ref_stats.log_likelihood.size());
    for (size_t i = 0; i < stats.log_likelihood.size(); ++i) {
      EXPECT_EQ(stats.log_likelihood[i], ref_stats.log_likelihood[i])
          << "iteration " << i << " (bit-exact)";
    }
  }
}

TEST_F(ParallelSystemTest, AnswerAllMatchesAnswerForAnyThreadCount) {
  std::vector<std::string> questions = BenchmarkQuestions(40, 8181);
  const core::KbqaSystem& kbqa = experiment().kbqa();

  std::vector<core::AnswerResult> reference;
  reference.reserve(questions.size());
  for (const std::string& q : questions) reference.push_back(kbqa.Answer(q));

  for (int threads : {1, 2, 8}) {
    std::vector<core::AnswerResult> batched =
        kbqa.AnswerAll(questions, threads);
    ASSERT_EQ(batched.size(), reference.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i].answered, reference[i].answered) << questions[i];
      EXPECT_EQ(batched[i].value, reference[i].value) << questions[i];
      EXPECT_EQ(batched[i].score, reference[i].score) << questions[i];
      EXPECT_EQ(batched[i].sparql, reference[i].sparql) << questions[i];
      EXPECT_EQ(batched[i].values, reference[i].values) << questions[i];
      EXPECT_EQ(batched[i].ranked.size(), reference[i].ranked.size());
    }
  }
}

TEST_F(ParallelSystemTest, CachedInferenceMatchesUncached) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::OnlineInference::Options cached_options = kbqa.options().online;
  cached_options.enable_value_cache = true;
  core::OnlineInference::Options uncached_options = kbqa.options().online;
  uncached_options.enable_value_cache = false;

  core::OnlineInference cached(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), cached_options);
  core::OnlineInference uncached(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), uncached_options);

  // Two passes over the same questions: the second pass hits a warm cache
  // and must still agree field-for-field with the uncached engine.
  std::vector<std::string> questions = BenchmarkQuestions(30, 9292);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& q : questions) {
      core::AnswerResult a = cached.Answer(q);
      core::AnswerResult b = uncached.Answer(q);
      EXPECT_EQ(a.answered, b.answered) << q;
      EXPECT_EQ(a.value, b.value) << q;
      EXPECT_EQ(a.score, b.score) << q;
      EXPECT_EQ(a.predicate, b.predicate) << q;
      EXPECT_EQ(a.sparql, b.sparql) << q;
      EXPECT_EQ(a.values, b.values) << q;
      EXPECT_EQ(a.num_predicates, b.num_predicates) << q;
      EXPECT_EQ(a.num_values, b.num_values) << q;
      ASSERT_EQ(a.ranked.size(), b.ranked.size()) << q;
      for (size_t i = 0; i < a.ranked.size(); ++i) {
        EXPECT_EQ(a.ranked[i].value, b.ranked[i].value);
        EXPECT_EQ(a.ranked[i].score, b.ranked[i].score);
        EXPECT_EQ(a.ranked[i].best_entity, b.ranked[i].best_entity);
      }

      std::vector<std::string> tokens = nlp::TokenizeQuestion(q);
      EXPECT_EQ(cached.IsPrimitiveBfq(tokens), uncached.IsPrimitiveBfq(tokens))
          << q;
    }
  }
  // Cache accounting: this test is single-threaded, so every lookup is
  // exactly a hit or a miss, every miss inserts, and the cached engine's
  // books must balance. The uncached engine bypasses the cache entirely.
  const core::ValueCacheStats stats = cached.value_cache_stats();
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.hits, 0u);  // Pass 2 rereads pass 1's entries.
  EXPECT_EQ(stats.misses, stats.entries);
  EXPECT_GT(stats.hits + stats.misses, stats.entries);
  const core::ValueCacheStats none = uncached.value_cache_stats();
  EXPECT_EQ(none.hits, 0u);
  EXPECT_EQ(none.misses, 0u);
  EXPECT_EQ(none.entries, 0u);
  EXPECT_EQ(none.bytes, 0u);
}

TEST_F(ParallelSystemTest, BudgetedCacheMatchesUnboundedAndStaysUnderBudget) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::OnlineInference::Options unbounded_options = kbqa.options().online;
  unbounded_options.enable_value_cache = true;
  unbounded_options.value_cache_budget_bytes = 0;
  core::OnlineInference::Options budgeted_options = unbounded_options;
  // Small enough to force evictions on a real question stream, large
  // enough to still admit entries (per-shard slice must fit one vector).
  budgeted_options.value_cache_budget_bytes = 16 * 1024;

  core::OnlineInference unbounded(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), unbounded_options);
  core::OnlineInference budgeted(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), budgeted_options);

  // Eviction must be semantically invisible: evicted entries are simply
  // recomputed from the immutable KB on the next miss.
  std::vector<std::string> questions = BenchmarkQuestions(40, 7171);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& q : questions) {
      core::AnswerResult a = budgeted.Answer(q);
      core::AnswerResult b = unbounded.Answer(q);
      EXPECT_EQ(a.answered, b.answered) << q;
      EXPECT_EQ(a.value, b.value) << q;
      EXPECT_EQ(a.score, b.score) << q;
      EXPECT_EQ(a.sparql, b.sparql) << q;
      EXPECT_EQ(a.values, b.values) << q;
      EXPECT_TRUE(a.status.ok());
    }
  }

  const core::ValueCacheStats capped = budgeted.value_cache_stats();
  EXPECT_EQ(capped.budget_bytes, budgeted_options.value_cache_budget_bytes);
  EXPECT_LE(capped.bytes, capped.budget_bytes);
  EXPECT_GT(capped.entries, 0u);
  const core::ValueCacheStats full = unbounded.value_cache_stats();
  EXPECT_EQ(full.budget_bytes, 0u);
  EXPECT_EQ(full.evictions, 0u);
  // Same stream, so the budgeted engine can only have lost hits (every
  // eviction it suffered turns a would-be hit into a miss).
  EXPECT_EQ(capped.hits + capped.misses, full.hits + full.misses);
  EXPECT_GE(capped.misses, full.misses);
}

TEST_F(ParallelSystemTest, AnswerCacheMatchesUncachedAcrossBatches) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::OnlineInference::Options cached_options = kbqa.options().online;
  cached_options.enable_answer_cache = true;
  cached_options.answer_cache_budget_bytes = 0;  // unbounded memo

  core::OnlineInference cached(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), cached_options);

  // Head-heavy batch: every question appears twice (serving traffic shape
  // the memo exists for).
  std::vector<std::string> unique_questions = BenchmarkQuestions(20, 5353);
  std::vector<std::string> batch = unique_questions;
  batch.insert(batch.end(), unique_questions.begin(), unique_questions.end());

  std::vector<core::AnswerResult> reference;
  reference.reserve(batch.size());
  for (const std::string& q : batch) reference.push_back(kbqa.Answer(q));

  // Pass 1 single-threaded (cold cache), pass 2 sharded (warm cache):
  // both must be field-identical to the uncached engine.
  for (int pass_threads : {1, 4}) {
    std::vector<core::AnswerResult> batched =
        cached.AnswerAll(batch, pass_threads);
    ASSERT_EQ(batched.size(), reference.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i].answered, reference[i].answered) << batch[i];
      EXPECT_EQ(batched[i].value, reference[i].value) << batch[i];
      EXPECT_EQ(batched[i].score, reference[i].score) << batch[i];
      EXPECT_EQ(batched[i].predicate, reference[i].predicate) << batch[i];
      EXPECT_EQ(batched[i].sparql, reference[i].sparql) << batch[i];
      EXPECT_EQ(batched[i].values, reference[i].values) << batch[i];
      EXPECT_TRUE(batched[i].status.ok()) << batch[i];
    }
  }

  // Books: pass 1 ran single-threaded, so each unique question missed
  // exactly once (its duplicate hit the fresh entry); pass 2 was all hits.
  const core::ValueCacheStats stats = cached.answer_cache_stats();
  EXPECT_EQ(stats.misses, unique_questions.size());
  EXPECT_EQ(stats.hits, 2 * batch.size() - unique_questions.size());
  EXPECT_EQ(stats.entries, unique_questions.size());
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.budget_bytes, 0u);

  // Single-shot Answer bypasses the whole-question memo (benchmarks measure
  // the pipeline): stats must not move.
  (void)cached.Answer(unique_questions[0]);  // memo bypass asserted below
  EXPECT_EQ(cached.answer_cache_stats().hits, stats.hits);
  EXPECT_EQ(cached.answer_cache_stats().misses, stats.misses);

  // With the memo disabled (the default), the books stay empty.
  EXPECT_EQ(kbqa.online().answer_cache_stats().entries, 0u);
  EXPECT_EQ(kbqa.online().answer_cache_stats().hits, 0u);
}

TEST_F(ParallelSystemTest, AnswerCacheKeyIsNormalizedAcrossSurfaceVariants) {
  // The memo key is NormalizeText(question), so casing / whitespace /
  // punctuation-spacing paraphrases of one canonical question must share
  // a single cache entry — and, since they tokenize identically, a single
  // identical answer.
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::OnlineInference::Options options = kbqa.options().online;
  options.enable_answer_cache = true;
  core::OnlineInference cached(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), options);

  const std::string question = BenchmarkQuestions(1, 8080).front();
  std::string upper = question;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  std::string spaced;
  for (char c : question) {
    spaced += c;
    if (c == ' ') spaced += "  ";
  }
  const std::vector<std::string> variants = {
      question, upper, "  " + question + "  ", spaced};
  for (const std::string& variant : variants) {
    ASSERT_EQ(nlp::NormalizeText(variant), nlp::NormalizeText(question))
        << variant;
  }

  const core::AnswerResult reference = kbqa.Answer(question);
  for (const std::string& variant : variants) {
    const core::AnswerResult result =
        cached.AnswerCached(variant, core::AnswerOptions{});
    EXPECT_EQ(result.answered, reference.answered) << variant;
    EXPECT_EQ(result.value, reference.value) << variant;
    EXPECT_EQ(result.score, reference.score) << variant;
    EXPECT_EQ(result.values, reference.values) << variant;
  }
  // One miss (the first variant computed), then every paraphrase hit the
  // same normalized entry.
  const core::ValueCacheStats stats = cached.answer_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, variants.size() - 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ParallelSystemTest, AnswerCacheBudgetBoundsResidentBytes) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  core::OnlineInference::Options budgeted_options = kbqa.options().online;
  budgeted_options.enable_answer_cache = true;
  // Small enough that a realistic stream cannot keep everything resident,
  // large enough for a per-shard slice to admit typical AnswerResults.
  budgeted_options.answer_cache_budget_bytes = 64 * 1024;

  core::OnlineInference budgeted(
      &experiment().world().kb, &experiment().world().taxonomy, &kbqa.ner(),
      &kbqa.template_store(), &kbqa.expanded_kb().paths(), budgeted_options);

  std::vector<std::string> questions = BenchmarkQuestions(40, 2718);
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<core::AnswerResult> batched = budgeted.AnswerAll(questions, 2);
    for (size_t i = 0; i < batched.size(); ++i) {
      // Eviction must be semantically invisible: dropped memo entries are
      // recomputed by the full pipeline on the next miss.
      core::AnswerResult direct = kbqa.Answer(questions[i]);
      EXPECT_EQ(batched[i].answered, direct.answered) << questions[i];
      EXPECT_EQ(batched[i].value, direct.value) << questions[i];
      EXPECT_EQ(batched[i].score, direct.score) << questions[i];
      EXPECT_EQ(batched[i].values, direct.values) << questions[i];
    }
  }

  const core::ValueCacheStats stats = budgeted.answer_cache_stats();
  EXPECT_EQ(stats.budget_bytes, budgeted_options.answer_cache_budget_bytes);
  EXPECT_LE(stats.bytes, stats.budget_bytes);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_EQ(stats.hits + stats.misses, 2 * questions.size());
}

TEST_F(ParallelSystemTest, DeadlineExceededDegradesGracefully) {
  const core::KbqaSystem& kbqa = experiment().kbqa();
  std::vector<std::string> questions = BenchmarkQuestions(10, 6464);

  core::AnswerOptions expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  core::AnswerOptions generous;
  generous.deadline = std::chrono::steady_clock::now() +
                      std::chrono::hours(1);

  for (const std::string& q : questions) {
    // An already-expired deadline returns immediately: empty answer,
    // kDeadlineExceeded status, nothing enumerated.
    core::AnswerResult late = kbqa.Answer(q, expired);
    EXPECT_FALSE(late.answered) << q;
    EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded) << q;
    EXPECT_EQ(late.num_templates, 0u) << q;

    // A generous deadline is semantically invisible.
    core::AnswerResult bounded = kbqa.Answer(q, generous);
    core::AnswerResult reference = kbqa.Answer(q);
    EXPECT_TRUE(bounded.status.ok()) << q;
    EXPECT_EQ(bounded.answered, reference.answered) << q;
    EXPECT_EQ(bounded.value, reference.value) << q;
    EXPECT_EQ(bounded.score, reference.score) << q;
    EXPECT_EQ(bounded.values, reference.values) << q;
  }
}

TEST_F(ParallelSystemTest, BatchedRunnerMatchesSequentialRunner) {
  corpus::BenchmarkSet set = experiment().MakeQald1();
  eval::RunResult sequential =
      eval::RunBenchmark(experiment().kbqa(), set);
  for (int threads : {1, 4}) {
    eval::RunResult batched =
        eval::RunBenchmarkBatched(experiment().kbqa(), set, threads);
    EXPECT_EQ(batched.counts.pro, sequential.counts.pro);
    EXPECT_EQ(batched.counts.ri, sequential.counts.ri);
    EXPECT_EQ(batched.counts.par, sequential.counts.par);
    EXPECT_EQ(batched.counts.total, sequential.counts.total);
    EXPECT_EQ(batched.bfq_only.ri, sequential.bfq_only.ri);
    ASSERT_EQ(batched.judged.size(), sequential.judged.size());
    for (size_t i = 0; i < batched.judged.size(); ++i) {
      EXPECT_EQ(batched.judged[i].judgment, sequential.judged[i].judgment);
      EXPECT_EQ(batched.judged[i].system_answer,
                sequential.judged[i].system_answer);
    }
  }
}

}  // namespace
}  // namespace kbqa
