// Property-style tests: invariants checked over randomized or exhaustively
// enumerated inputs (seed-parameterized where applicable), plus failure
// injection on the serialization paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/decomposer.h"
#include "core/em_learner.h"
#include "core/model_io.h"
#include "corpus/name_generator.h"
#include "corpus/qa_generator.h"
#include "corpus/world_generator.h"
#include "eval/experiment.h"
#include "nlp/pattern.h"
#include "nlp/tokenizer.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "rdf/ntriples.h"
#include "rdf/query.h"
#include "util/rng.h"

namespace kbqa {
namespace {

// ---------- Decomposer: DP result == exhaustive-search optimum ----------

/// Brute-force best decomposition probability by recursive enumeration of
/// every (inner-span, outer-pattern) split — exponential, usable only for
/// short inputs; the DP must match it exactly (Theorem 2's optimality).
double BruteForceBest(const std::vector<std::string>& tokens,
                      const nlp::PatternIndex& index,
                      const std::function<bool(const std::vector<std::string>&)>&
                          primitive,
                      size_t min_inner) {
  if (tokens.size() >= min_inner && primitive(tokens)) return 1.0;
  double best = 0;
  for (size_t b = 0; b < tokens.size(); ++b) {
    for (size_t e = b + min_inner; e <= tokens.size(); ++e) {
      if (b == 0 && e == tokens.size()) continue;
      std::vector<std::string> inner(tokens.begin() + b, tokens.begin() + e);
      double inner_p = BruteForceBest(inner, index, primitive, min_inner);
      if (inner_p <= 0) continue;
      double outer_p =
          index.ValidProbability(nlp::MakePattern(tokens, b, e));
      best = std::max(best, inner_p * outer_p);
    }
  }
  return best;
}

class DecomposerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecomposerPropertyTest, DpMatchesBruteForce) {
  Rng rng(GetParam());
  // Random mini-language: words w0..w5; random corpus questions with random
  // mention spans; random primitive set.
  const std::vector<std::string> vocab = {"w0", "w1", "w2", "w3", "w4", "w5"};
  std::vector<nlp::PatternQuestion> corpus;
  for (int i = 0; i < 12; ++i) {
    nlp::PatternQuestion pq;
    size_t len = 2 + rng.Uniform(4);
    for (size_t j = 0; j < len; ++j) {
      pq.tokens.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    if (rng.Bernoulli(0.8)) {
      size_t b = rng.Uniform(len);
      size_t e = b + 1 + rng.Uniform(len - b);
      pq.mention_spans.push_back({b, e});
    }
    corpus.push_back(std::move(pq));
  }
  nlp::PatternIndex index = nlp::PatternIndex::Build(corpus);

  std::set<std::string> primitives;
  for (int i = 0; i < 4; ++i) {
    size_t len = 2 + rng.Uniform(2);
    std::vector<std::string> p;
    for (size_t j = 0; j < len; ++j) {
      p.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    primitives.insert(nlp::JoinTokens(p));
  }
  auto is_primitive = [&](const std::vector<std::string>& tokens) {
    return primitives.count(nlp::JoinTokens(tokens)) > 0;
  };

  core::ComplexDecomposer::Options options;
  core::ComplexDecomposer decomposer(&index, is_primitive, options);

  for (int trial = 0; trial < 20; ++trial) {
    size_t len = 2 + rng.Uniform(5);  // up to 6 tokens: brute force is fine
    std::vector<std::string> question;
    for (size_t j = 0; j < len; ++j) {
      question.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    double expected = BruteForceBest(question, index, is_primitive,
                                     options.min_inner_tokens);
    core::Decomposition got = decomposer.Decompose(question);
    EXPECT_NEAR(got.probability, expected, 1e-12)
        << nlp::JoinTokens(question);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Expansion invariants over a generated world ----------

class ExpansionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpansionPropertyTest, MaterializedTriplesReplayThroughBaseKb) {
  corpus::WorldConfig config;
  config.seed = GetParam();
  config.schema.scale = 0.03;
  config.schema.generic_attributes_per_type = 2;
  config.schema.generic_relations_per_type = 2;
  corpus::World world = corpus::GenerateWorld(config);

  rdf::ExpansionOptions options;
  options.max_length = 3;
  std::vector<rdf::TermId> seeds = world.kb.AllEntities();
  seeds.resize(std::min<size_t>(seeds.size(), 200));
  auto ekb =
      rdf::ExpandedKb::Build(world.kb, seeds, world.name_like, options);
  ASSERT_TRUE(ekb.ok());

  size_t checked = 0;
  ekb.value().ForEachTriple([&](const rdf::ExpandedTriple& triple) {
    const rdf::PredPath& path = ekb.value().paths().GetPath(triple.path);
    // Invariant 1: length bound.
    ASSERT_LE(path.size(), 3u);
    // Invariant 2: name-tail rule for length >= 2.
    if (path.size() >= 2) {
      ASSERT_TRUE(world.name_like.count(path.back()) > 0)
          << ekb.value().paths().ToString(triple.path, world.kb);
    }
    // Invariant 3 (sampled): the triple replays by walking the base KB.
    if (checked % 37 == 0) {
      auto walked = rdf::ObjectsViaPath(world.kb, triple.s, path);
      ASSERT_TRUE(std::find(walked.begin(), walked.end(), triple.o) !=
                  walked.end());
    }
    ++checked;
  });
  ASSERT_GT(checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionPropertyTest,
                         ::testing::Values(11, 22, 33));

TEST(DiskExpansionTest, DiskScanMatchesInMemoryExactly) {
  // The paper's disk-based index+scan+join BFS must produce exactly the
  // same expanded triples as the in-memory walk.
  corpus::WorldConfig config;
  config.schema.scale = 0.03;
  config.schema.generic_attributes_per_type = 2;
  config.schema.generic_relations_per_type = 2;
  corpus::World world = corpus::GenerateWorld(config);
  std::string path = ::testing::TempDir() + "/disk_kb.nt";
  ASSERT_TRUE(rdf::ExportNTriples(world.kb, path).ok());

  std::vector<rdf::TermId> seeds = world.kb.AllEntities();
  seeds.resize(std::min<size_t>(seeds.size(), 150));
  rdf::ExpansionOptions options;
  options.max_length = 3;

  auto memory =
      rdf::ExpandedKb::Build(world.kb, seeds, world.name_like, options);
  auto disk = rdf::ExpandedKb::BuildFromDisk(world.kb, path, seeds,
                                             world.name_like, options);
  ASSERT_TRUE(memory.ok());
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ(memory.value().num_triples(), disk.value().num_triples());

  // Triple-for-triple equality, comparing by resolved predicate paths
  // (path ids may be interned in different orders).
  auto materialize = [&](const rdf::ExpandedKb& ekb) {
    std::set<std::string> out;
    ekb.ForEachTriple([&](const rdf::ExpandedTriple& triple) {
      out.insert(std::to_string(triple.s) + "|" +
                 ekb.paths().ToString(triple.path, world.kb) + "|" +
                 std::to_string(triple.o));
    });
    return out;
  };
  EXPECT_EQ(materialize(memory.value()), materialize(disk.value()));
  std::remove(path.c_str());
}

TEST(DiskExpansionTest, ExpansionIsBitIdenticalAcrossThreadCounts) {
  // The sharded BFS commits discoveries serially in shard order, so the
  // triple set AND the PathId numbering must be byte-identical for any
  // thread count — for both the in-memory and the disk-scan variant.
  corpus::WorldConfig config;
  config.schema.scale = 0.03;
  config.schema.generic_attributes_per_type = 2;
  config.schema.generic_relations_per_type = 2;
  corpus::World world = corpus::GenerateWorld(config);
  std::string path = ::testing::TempDir() + "/threaded_kb.nt";
  ASSERT_TRUE(rdf::ExportNTriples(world.kb, path).ok());

  std::vector<rdf::TermId> seeds = world.kb.AllEntities();
  seeds.resize(std::min<size_t>(seeds.size(), 150));

  // Raw-id materialization: any PathId renumbering would show up here.
  auto raw_triples = [](const rdf::ExpandedKb& ekb) {
    std::vector<std::tuple<rdf::TermId, rdf::PathId, rdf::TermId>> out;
    ekb.ForEachTriple([&](const rdf::ExpandedTriple& triple) {
      out.emplace_back(triple.s, triple.path, triple.o);
    });
    std::sort(out.begin(), out.end());
    return out;
  };

  for (bool from_disk : {false, true}) {
    auto run = [&](int threads) {
      rdf::ExpansionOptions options;
      options.max_length = 3;
      options.num_threads = threads;
      return from_disk
                 ? rdf::ExpandedKb::BuildFromDisk(world.kb, path, seeds,
                                                  world.name_like, options)
                 : rdf::ExpandedKb::Build(world.kb, seeds, world.name_like,
                                          options);
    };
    auto base = run(1);
    ASSERT_TRUE(base.ok()) << base.status();
    auto base_triples = raw_triples(base.value());
    ASSERT_GT(base_triples.size(), 100u);
    for (int threads : {2, 4}) {
      auto other = run(threads);
      ASSERT_TRUE(other.ok()) << other.status();
      // Same dictionary: same size and the same PredPath behind every id.
      ASSERT_EQ(other.value().paths().size(), base.value().paths().size())
          << "from_disk=" << from_disk << " threads=" << threads;
      for (rdf::PathId id = 0; id < base.value().paths().size(); ++id) {
        ASSERT_EQ(other.value().paths().GetPath(id),
                  base.value().paths().GetPath(id))
            << "from_disk=" << from_disk << " threads=" << threads;
      }
      EXPECT_EQ(raw_triples(other.value()), base_triples)
          << "from_disk=" << from_disk << " threads=" << threads;
    }
  }
  std::remove(path.c_str());
}

TEST(DiskExpansionTest, MissingFileFailsCleanly) {
  corpus::WorldConfig config;
  config.schema.scale = 0.01;
  corpus::World world = corpus::GenerateWorld(config);
  rdf::ExpansionOptions options;
  auto disk = rdf::ExpandedKb::BuildFromDisk(
      world.kb, "/no/such/kb.nt", world.kb.AllEntities(), world.name_like,
      options);
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kIoError);
}

// ---------- EM invariants across seeds ----------

class EmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EmPropertyTest, LikelihoodMonotoneAndThetaNormalized) {
  eval::ExperimentConfig config = eval::ExperimentConfig::Small();
  config.world.seed = GetParam();
  config.corpus.seed = GetParam() * 31;
  config.corpus.num_pairs = 1500;
  config.kbqa.em.tolerance = 0;  // run all iterations
  config.kbqa.em.max_iterations = 8;
  auto experiment = eval::Experiment::Build(config);
  ASSERT_TRUE(experiment.ok()) << experiment.status();

  const core::EmStats& stats = experiment.value()->kbqa().em_stats();
  ASSERT_GE(stats.log_likelihood.size(), 2u);
  for (size_t i = 1; i < stats.log_likelihood.size(); ++i) {
    EXPECT_GE(stats.log_likelihood[i], stats.log_likelihood[i - 1] - 1e-6);
  }
  const core::TemplateStore& store =
      experiment.value()->kbqa().template_store();
  for (core::TemplateId t = 0; t < store.num_templates(); ++t) {
    auto dist = store.Distribution(t);
    if (dist.empty()) continue;
    double sum = 0;
    for (const auto& entry : dist) {
      EXPECT_GE(entry.probability, 0.0);
      EXPECT_LE(entry.probability, 1.0 + 1e-9);
      sum += entry.probability;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << store.TemplateText(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmPropertyTest, ::testing::Values(7, 8, 9));

// ---------- Tokenizer idempotence ----------

TEST(TokenizerPropertyTest, NormalizeTextIsIdempotent) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string name = corpus::NameGenerator::Generate(
        rng, static_cast<corpus::NameStyle>(rng.Uniform(9)));
    std::string wrapped = "  Who KNOWS about '" + name + "'s thing?!  ";
    std::string once = nlp::NormalizeText(wrapped);
    EXPECT_EQ(nlp::NormalizeText(once), once) << wrapped;
  }
}

// ---------- Pattern index: fv <= fo always ----------

TEST(PatternPropertyTest, ValidNeverExceedsOccurrences) {
  Rng rng(123);
  const std::vector<std::string> vocab = {"a", "b", "c", "d"};
  std::vector<nlp::PatternQuestion> corpus;
  for (int i = 0; i < 60; ++i) {
    nlp::PatternQuestion pq;
    size_t len = 2 + rng.Uniform(5);
    for (size_t j = 0; j < len; ++j) {
      pq.tokens.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    size_t b = rng.Uniform(len);
    size_t e = b + 1 + rng.Uniform(len - b);
    pq.mention_spans.push_back({b, e});
    corpus.push_back(std::move(pq));
  }
  nlp::PatternIndex index = nlp::PatternIndex::Build(corpus);
  for (const nlp::PatternQuestion& pq : corpus) {
    for (const auto& [b, e] : pq.mention_spans) {
      auto stats = index.Stats(nlp::MakePattern(pq.tokens, b, e));
      EXPECT_LE(stats.fv, stats.fo);
      EXPECT_GE(stats.fv, 1u);
      double p = index.ValidProbability(nlp::MakePattern(pq.tokens, b, e));
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

// ---------- Failure injection: truncated files ----------

TEST(FailureInjectionTest, TruncatedKbFilesNeverCrash) {
  rdf::KnowledgeBase kb;
  rdf::PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  rdf::PredId pop = kb.AddPredicate("population");
  rdf::TermId e = kb.AddEntity("city/x");
  kb.AddTriple(e, name, kb.AddLiteral("xville"));
  kb.AddTriple(e, pop, kb.AddLiteral("1234"));
  kb.Freeze();

  std::string path = ::testing::TempDir() + "/trunc_kb.bin";
  ASSERT_TRUE(kb.Save(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::vector<char> bytes(static_cast<size_t>(full));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  // Truncate at a sweep of offsets; every load must fail cleanly.
  for (long cut = 0; cut < full; cut += std::max<long>(1, full / 40)) {
    std::string cut_path = ::testing::TempDir() + "/trunc_kb_cut.bin";
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (cut > 0) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, static_cast<size_t>(cut), out),
                static_cast<size_t>(cut));
    }
    std::fclose(out);
    auto loaded = rdf::KnowledgeBase::Load(cut_path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << full;
    std::remove(cut_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, TruncatedModelFilesNeverCrash) {
  // Build a tiny trained model via the micro pipeline.
  corpus::WorldConfig wc;
  wc.schema.scale = 0.02;
  wc.schema.generic_attributes_per_type = 1;
  wc.schema.generic_relations_per_type = 1;
  corpus::World world = corpus::GenerateWorld(wc);
  corpus::QaGenConfig qc;
  qc.num_pairs = 400;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, qc);
  core::KbqaSystem kbqa(&world);
  ASSERT_TRUE(kbqa.Train(corpus).ok());

  std::string path = ::testing::TempDir() + "/trunc_model.bin";
  ASSERT_TRUE(kbqa.SaveModel(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::vector<char> bytes(static_cast<size_t>(full));
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  for (long cut = 0; cut < full; cut += std::max<long>(1, full / 40)) {
    std::string cut_path = ::testing::TempDir() + "/trunc_model_cut.bin";
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (cut > 0) {
      ASSERT_EQ(std::fwrite(bytes.data(), 1, static_cast<size_t>(cut), out),
                static_cast<size_t>(cut));
    }
    std::fclose(out);
    auto loaded = core::LoadModel(world.kb, cut_path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut << " of " << full;
    std::remove(cut_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, ForgedModelHeadersAreCorruptionNotOomOrNan) {
  // Hand-built model files with internally consistent structure but lying
  // headers: LoadModel must reject each with a clean Corruption — never
  // size a buffer from a length the file cannot hold, and never let a
  // non-finite probability reach the distribution sort (NaN breaks its
  // strict weak ordering).
  rdf::KnowledgeBase kb;
  rdf::PredId name = kb.AddPredicate("name");
  kb.SetNamePredicate(name);
  rdf::TermId e = kb.AddEntity("person/a");
  kb.AddTriple(e, name, kb.AddLiteral("alice"));
  kb.Freeze();

  const std::string path = ::testing::TempDir() + "/forged_model.bin";
  auto put_u64 = [](std::string* s, uint64_t v) {
    s->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put_str = [&put_u64](std::string* s, const std::string& v) {
    put_u64(s, v.size());
    *s += v;
  };
  auto load_bytes = [&](const std::string& bytes) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    EXPECT_NE(out, nullptr);
    EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    std::fclose(out);
    return core::LoadModel(kb, path);
  };
  constexpr uint64_t kModelMagic = 0x4b42514d4f44454cULL;  // "KBQMODEL"

  // A string length header claiming 1 GiB in a 24-byte file.
  {
    std::string bytes;
    put_u64(&bytes, kModelMagic);
    put_u64(&bytes, 1);                  // num_templates
    put_u64(&bytes, uint64_t{1} << 30);  // template text "length"
    auto loaded = load_bytes(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }

  // A structurally valid model whose single entry carries a non-finite or
  // negative probability.
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity(), -0.25}) {
    std::string bytes;
    put_u64(&bytes, kModelMagic);
    put_u64(&bytes, 1);  // num_templates
    put_str(&bytes, "who is $person");
    put_u64(&bytes, 3);  // frequency
    put_u64(&bytes, 1);  // dist_size
    put_u64(&bytes, 1);  // path_len
    put_str(&bytes, "name");
    bytes.append(reinterpret_cast<const char*>(&bad), sizeof(bad));
    auto loaded = load_bytes(bytes);
    ASSERT_FALSE(loaded.ok()) << "probability " << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << bad;
  }
  std::remove(path.c_str());
}

TEST(FailureInjectionTest, AllNoiseCorpusTrainsOrFailsGracefully) {
  // A corpus of pure chit-chat yields no observations; training must fail
  // with FailedPrecondition, not crash or loop.
  corpus::WorldConfig wc;
  wc.schema.scale = 0.02;
  corpus::World world = corpus::GenerateWorld(wc);
  corpus::QaGenConfig qc;
  qc.num_pairs = 200;
  qc.chitchat_rate = 1.0;
  corpus::QaCorpus corpus = corpus::GenerateTrainingCorpus(world, qc);
  core::KbqaSystem kbqa(&world);
  Status status = kbqa.Train(corpus);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(kbqa.trained());
  EXPECT_FALSE(kbqa.Answer("anything").answered);
}

// ---------- Query engine: deterministic, duplicate-free output ----------

TEST(QueryPropertyTest, RowsAreSortedAndUnique) {
  corpus::WorldConfig wc;
  wc.schema.scale = 0.03;
  corpus::World world = corpus::GenerateWorld(wc);
  auto query =
      rdf::ParseQuery("SELECT ?c ?n WHERE { ?c country ?x . ?x name ?n }");
  ASSERT_TRUE(query.ok());
  auto rows = rdf::ExecuteQuery(world.kb, query.value());
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(rows.value().size(), 10u);
  for (size_t i = 1; i < rows.value().size(); ++i) {
    EXPECT_LT(rows.value()[i - 1], rows.value()[i]);  // strictly increasing
  }
}

// ---------- Query engine vs brute-force evaluation ----------

/// Brute force: enumerate every assignment of entities/literals to the
/// query variables and test all patterns — exponential, ground truth for
/// tiny KBs.
std::set<std::vector<rdf::TermId>> BruteForceQuery(
    const rdf::KnowledgeBase& kb, const rdf::Query& query) {
  std::vector<std::string> vars;
  for (const rdf::TriplePattern& p : query.where) {
    for (const rdf::PatternTerm* term : {&p.subject, &p.object}) {
      if (term->is_variable &&
          std::find(vars.begin(), vars.end(), term->text) == vars.end()) {
        vars.push_back(term->text);
      }
    }
  }
  std::set<std::vector<rdf::TermId>> rows;
  std::vector<rdf::TermId> assignment(vars.size());
  std::function<void(size_t)> enumerate = [&](size_t i) {
    if (i == vars.size()) {
      for (const rdf::TriplePattern& p : query.where) {
        auto resolve = [&](const rdf::PatternTerm& term,
                           rdf::TermId* out) -> bool {
          if (term.is_variable) {
            size_t index = std::find(vars.begin(), vars.end(), term.text) -
                           vars.begin();
            *out = assignment[index];
            return true;
          }
          auto id = kb.LookupNode(term.text);
          if (!id) return false;
          *out = *id;
          return true;
        };
        rdf::TermId s, o;
        auto pred = kb.LookupPredicate(p.predicate);
        if (!pred || !resolve(p.subject, &s) || !resolve(p.object, &o)) {
          return;
        }
        if (!kb.HasTriple(s, *pred, o)) return;
      }
      std::vector<rdf::TermId> row;
      for (const std::string& sel : query.select) {
        size_t index =
            std::find(vars.begin(), vars.end(), sel) - vars.begin();
        row.push_back(index < vars.size() ? assignment[index]
                                          : rdf::kInvalidTerm);
      }
      rows.insert(row);
      return;
    }
    for (rdf::TermId node = 0; node < kb.num_nodes(); ++node) {
      assignment[i] = node;
      enumerate(i + 1);
    }
  };
  enumerate(0);
  return rows;
}

class QueryEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryEquivalenceTest, PlannerMatchesBruteForce) {
  // Tiny random KB: 8 entities, 4 predicates, random edges + literals.
  Rng rng(GetParam());
  rdf::KnowledgeBase kb;
  std::vector<rdf::PredId> preds;
  for (int p = 0; p < 4; ++p) {
    preds.push_back(kb.AddPredicate("p" + std::to_string(p)));
  }
  std::vector<rdf::TermId> entities;
  for (int e = 0; e < 8; ++e) {
    entities.push_back(kb.AddEntity("e" + std::to_string(e)));
  }
  std::vector<rdf::TermId> literals;
  for (int l = 0; l < 4; ++l) {
    literals.push_back(kb.AddLiteral("v" + std::to_string(l)));
  }
  for (int t = 0; t < 24; ++t) {
    rdf::TermId s = entities[rng.Uniform(entities.size())];
    rdf::PredId p = preds[rng.Uniform(preds.size())];
    rdf::TermId o = rng.Bernoulli(0.5)
                        ? entities[rng.Uniform(entities.size())]
                        : literals[rng.Uniform(literals.size())];
    kb.AddTriple(s, p, o);
  }
  kb.Freeze();

  // Random conjunctive queries over ?x ?y with mixed constants.
  for (int trial = 0; trial < 10; ++trial) {
    rdf::Query query;
    query.select = {"x", "y"};
    size_t num_patterns = 1 + rng.Uniform(3);
    for (size_t i = 0; i < num_patterns; ++i) {
      rdf::TriplePattern pattern;
      const char* subject_vars[] = {"x", "y"};
      pattern.subject =
          rng.Bernoulli(0.7)
              ? rdf::PatternTerm{true, subject_vars[rng.Uniform(2)]}
              : rdf::PatternTerm{false,
                                 "e" + std::to_string(rng.Uniform(8))};
      pattern.predicate = "p" + std::to_string(rng.Uniform(4));
      pattern.object =
          rng.Bernoulli(0.7)
              ? rdf::PatternTerm{true, subject_vars[rng.Uniform(2)]}
              : (rng.Bernoulli(0.5)
                     ? rdf::PatternTerm{false,
                                        "e" + std::to_string(rng.Uniform(8))}
                     : rdf::PatternTerm{false,
                                        "v" + std::to_string(rng.Uniform(4))});
      query.where.push_back(std::move(pattern));
    }
    auto rows = rdf::ExecuteQuery(kb, query);
    ASSERT_TRUE(rows.ok()) << rdf::QueryToString(query);
    std::set<std::vector<rdf::TermId>> got(rows.value().begin(),
                                           rows.value().end());
    // Note: ExecuteQuery leaves a SELECT variable unbound (kInvalidTerm)
    // when no pattern mentions it; brute force enumerates it. Skip those
    // degenerate queries.
    bool mentions_x = false, mentions_y = false;
    for (const auto& p : query.where) {
      for (const rdf::PatternTerm* term : {&p.subject, &p.object}) {
        if (term->is_variable && term->text == "x") mentions_x = true;
        if (term->is_variable && term->text == "y") mentions_y = true;
      }
    }
    if (!mentions_x || !mentions_y) continue;
    EXPECT_EQ(got, BruteForceQuery(kb, query))
        << rdf::QueryToString(query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEquivalenceTest,
                         ::testing::Values(41, 42, 43, 44));

// ---------- KB persistence over generated worlds ----------

class KbRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KbRoundTripTest, GeneratedWorldSurvivesSaveLoad) {
  corpus::WorldConfig config;
  config.seed = GetParam();
  config.schema.scale = 0.02;
  corpus::World world = corpus::GenerateWorld(config);
  std::string path = ::testing::TempDir() + "/world_kb_" +
                     std::to_string(GetParam()) + ".bin";
  ASSERT_TRUE(world.kb.Save(path).ok());
  auto loaded = rdf::KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_triples(), world.kb.num_triples());
  EXPECT_EQ(loaded.value().num_entities(), world.kb.num_entities());
  EXPECT_EQ(loaded.value().num_predicates(), world.kb.num_predicates());
  // Spot-check: famous entity lookups behave identically.
  for (const auto& [name, entity] : world.famous) {
    auto here = world.kb.EntitiesByName(name);
    auto there = loaded.value().EntitiesByName(name);
    ASSERT_EQ(here.size(), there.size()) << name;
    (void)entity;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KbRoundTripTest,
                         ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace kbqa
