// Concurrency stress for every shared-state subsystem, written to run
// under ThreadSanitizer (cmake -DTSAN=ON; scripts/check.sh --tsan). The
// assertions matter in every configuration, but the real gate is TSan
// proving the synchronization: each test drives genuinely concurrent
// access — pool scheduling, sharded LRU mutation, metric shards, trace
// rings, one engine answering from many threads, parallel Freeze/Build —
// so a missing happens-before edge anywhere in those paths becomes a CI
// failure instead of a corrupted answer in production.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/kbqa_system.h"
#include "core/online.h"
#include "corpus/qa_generator.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "core/live_engine.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"
#include "rdf/mutable_kb.h"
#include "serve/server.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace kbqa {
namespace {

// ---------- ThreadPool ----------

TEST(RaceStressTest, ThreadPoolHammerSharedCounter) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.RunShards(32, [&](size_t shard) {
      sum.fetch_add(static_cast<long>(shard), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 200L * (31 * 32 / 2));
}

TEST(RaceStressTest, ThreadPoolShutdownWithIdleWorkers) {
  // Construct-and-destroy: workers park in the wait loop and must observe
  // shutdown_ under the mutex — the teardown handshake TSan verifies.
  for (int i = 0; i < 50; ++i) {
    ThreadPool pool(4);
  }
}

TEST(RaceStressTest, ThreadPoolDeterministicShutdownAfterQueuedWork) {
  // Destruction immediately after a job drains: the queued shards were
  // being pulled by workers moments before ~ThreadPool sets shutdown_, so
  // the join must synchronize with the last DrainShards of every worker.
  for (int i = 0; i < 50; ++i) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.RunShards(64, [&](size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(), 64);
    // ~ThreadPool here, with workers potentially still inside their final
    // bookkeeping section.
  }
}

TEST(RaceStressTest, ThreadPoolDrivenFromAnotherThread) {
  // The pool's owner and the thread calling RunShards differ; destruction
  // happens after join, the contract every engine follows.
  for (int i = 0; i < 20; ++i) {
    auto pool = std::make_unique<ThreadPool>(3);
    std::atomic<int> ran{0};
    std::thread driver([&] {
      pool->RunShards(16, [&](size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    });
    driver.join();
    EXPECT_EQ(ran.load(), 16);
    pool.reset();
  }
}

// ---------- ShardedLruCache ----------

TEST(RaceStressTest, LruCacheConcurrentMixedOperations) {
  constexpr uint64_t kBudget = 1 << 14;
  ShardedLruCache<uint64_t, std::vector<int>> cache(kBudget, 8);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> hits{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &hits, t] {
      std::vector<int> out;
      for (int i = 0; i < 2000; ++i) {
        const uint64_t key = static_cast<uint64_t>((i * 7 + t * 13) % 257);
        if (cache.Get(key, &out)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          // Copied-out value must be intact even if the entry is being
          // evicted concurrently.
          ASSERT_EQ(out.size(), key % 17 + 1);
        } else {
          cache.Insert(key, std::vector<int>(key % 17 + 1, t),
                       (key % 17 + 1) * sizeof(int));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = cache.GetStats();
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_GT(hits.load(), 0u);
}

// ---------- MetricsRegistry / trace rings ----------

TEST(RaceStressTest, MetricsConcurrentUpdatesAndSnapshots) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("race.counter");
  obs::Histogram* histogram = registry.GetHistogram("race.histogram");
  std::atomic<bool> done{false};
  // Reader thread snapshots (and interns new names) while writers bump.
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      obs::MetricsSnapshot snap = registry.Snapshot();
      const auto* c = snap.counter("race.counter");
      ASSERT_NE(c, nullptr);
      ASSERT_LE(c->value, 4u * 10000u);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        counter->Add(1);
        histogram->Record(static_cast<uint64_t>(i));
        if (i % 1000 == 0) {
          registry.GetGauge("race.gauge." + std::to_string(t))->Set(i);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter->Value(), 4u * 10000u);
  EXPECT_EQ(histogram->Count(), 4u * 10000u);
}

void RecordOneSpan() {
  KBQA_TRACE_SPAN("race.span");
}

TEST(RaceStressTest, TraceRingsConcurrentRecordAndExport) {
  obs::Tracing::Start();
  std::atomic<bool> done{false};
  // Exporting while recording is allowed to observe torn/stale rows but
  // must be free of data races (ring slots are atomics) and well-formed.
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::ostringstream os;
      obs::Tracing::ExportChromeTrace(os);
      ASSERT_FALSE(os.str().empty());
      (void)obs::Tracing::CollectedEvents();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 5000; ++i) RecordOneSpan();
    });
  }
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  exporter.join();
  obs::Tracing::Stop();
  // Quiescent export sees every surviving event (rings hold 2^14 each).
  EXPECT_GE(obs::Tracing::CollectedEvents(), 4u * 5000u);
}

// ---------- Parallel RDF substrate ----------

TEST(RaceStressTest, ParallelFreezeAndExpandedKbBuild) {
  rdf::KnowledgeBase kb;
  const rdf::PredId name = kb.AddPredicate("name");
  const rdf::PredId knows = kb.AddPredicate("knows");
  kb.SetNamePredicate(name);
  constexpr int kPeople = 400;
  std::vector<rdf::TermId> people;
  for (int i = 0; i < kPeople; ++i) {
    const rdf::TermId person = kb.AddEntity("person/" + std::to_string(i));
    people.push_back(person);
    kb.AddTriple(person, name,
                 kb.AddLiteral("person " + std::to_string(i)));
  }
  for (int i = 0; i < kPeople; ++i) {
    kb.AddTriple(people[static_cast<size_t>(i)], knows,
                 people[static_cast<size_t>((i + 1) % kPeople)]);
    kb.AddTriple(people[static_cast<size_t>(i)], knows,
                 people[static_cast<size_t>((i * 7 + 3) % kPeople)]);
  }
  kb.Freeze(4);  // parallel counting-sort under TSan

  rdf::ExpansionOptions options;
  options.max_length = 3;
  options.num_threads = 4;  // parallel frontier scan under TSan
  std::vector<rdf::TermId> seeds(people.begin(), people.begin() + 32);
  auto built = rdf::ExpandedKb::Build(kb, seeds, {name}, options);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_GT(built.value().num_triples(), 0u);
}

// ---------- One engine, many answering threads ----------

class RaceStressSystemTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }

  static std::vector<std::string> BenchmarkQuestions(size_t n,
                                                     uint64_t seed) {
    corpus::BenchmarkConfig config;
    config.num_questions = n;
    config.seed = seed;
    std::vector<std::string> questions;
    for (const corpus::QaPair& pair :
         corpus::GenerateBenchmark(experiment().world(), config)
             .questions.pairs) {
      questions.push_back(pair.question);
    }
    return questions;
  }

  /// A fresh engine over the shared trained model, so per-test cache
  /// options don't disturb the shared experiment's engine.
  static std::unique_ptr<core::OnlineInference> MakeEngine(
      const core::OnlineInference::Options& options) {
    const core::KbqaSystem& kbqa = experiment().kbqa();
    return std::make_unique<core::OnlineInference>(
        &experiment().world().kb, &experiment().world().taxonomy,
        &kbqa.ner(), &kbqa.template_store(), &kbqa.expanded_kb().paths(),
        options);
  }
};

TEST_F(RaceStressSystemTest, ConcurrentAnswerOnOneEngineMatchesSerial) {
  const std::vector<std::string> questions = BenchmarkQuestions(20, 4242);
  const core::KbqaSystem& kbqa = experiment().kbqa();

  std::vector<core::AnswerResult> reference;
  reference.reserve(questions.size());
  for (const std::string& q : questions) reference.push_back(kbqa.Answer(q));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < questions.size(); ++i) {
          const core::AnswerResult result = kbqa.Answer(questions[i]);
          ASSERT_EQ(result.answered, reference[i].answered) << questions[i];
          ASSERT_EQ(result.value, reference[i].value) << questions[i];
          ASSERT_EQ(result.score, reference[i].score) << questions[i];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST_F(RaceStressSystemTest, ConcurrentAnswerAllWithSharedAnswerCache) {
  core::OnlineInference::Options options =
      experiment().kbqa().options().online;
  options.enable_answer_cache = true;
  options.answer_cache_budget_bytes = 1 << 16;  // small: force evictions
  const auto engine = MakeEngine(options);

  const std::vector<std::string> questions = BenchmarkQuestions(30, 977);
  const std::vector<core::AnswerResult> reference =
      engine->AnswerAll(questions, 1);

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      const std::vector<core::AnswerResult> batched =
          engine->AnswerAll(questions, 2);
      ASSERT_EQ(batched.size(), reference.size());
      for (size_t i = 0; i < batched.size(); ++i) {
        ASSERT_EQ(batched[i].answered, reference[i].answered);
        ASSERT_EQ(batched[i].value, reference[i].value);
        ASSERT_EQ(batched[i].score, reference[i].score);
      }
    });
  }
  for (auto& th : threads) th.join();
  const core::ValueCacheStats stats = engine->answer_cache_stats();
  EXPECT_LE(stats.bytes, options.answer_cache_budget_bytes);
  EXPECT_EQ(stats.hits + stats.misses, 4u * questions.size());
}

TEST_F(RaceStressSystemTest, EngineShutdownImmediatelyAfterInFlightWork) {
  // Deterministic-shutdown satellite: the engine (and the pool AnswerAll
  // creates inside) is destroyed the instant its last batch completes,
  // while worker threads are in their final teardown section. TSan checks
  // the destructor's join edge against every answer the workers wrote.
  const std::vector<std::string> questions = BenchmarkQuestions(10, 31337);
  core::OnlineInference::Options options =
      experiment().kbqa().options().online;
  for (int round = 0; round < 10; ++round) {
    auto engine = MakeEngine(options);
    std::thread a([&] { (void)engine->AnswerAll(questions, 2); });
    std::thread b([&] { (void)engine->AnswerAll(questions, 2); });
    a.join();
    b.join();
    engine.reset();
  }
}

// ---------- Serving front door ----------

TEST(RaceStressTest, ServeHammerSubmittersAgainstBatcherAndTeardown) {
  // Many submitter threads race the batcher, the worker pool, and an
  // immediate teardown; the small queue forces the admission-control path
  // concurrently with accepts. The invariant under all interleavings:
  // every *accepted* request's callback runs exactly once (completed or
  // shed at shutdown), every rejected one's never runs — and every
  // submitted request (accepted or not) leaves exactly one wide event,
  // even when teardown resolves it.
  obs::WideEvents::ResetForTest();
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> callbacks{0};
    {
      serve::ServingOptions options;
      options.num_workers = 3;
      options.max_queue_depth = 64;
      options.max_batch_size = 4;
      options.max_batch_wait = std::chrono::microseconds(50);
      serve::Server server(
          [](const std::string& question, const core::AnswerOptions&) {
            core::AnswerResult result;
            result.answered = true;
            result.value = question;
            return result;
          },
          options);
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 200; ++i) {
            const Status admitted = server.Submit(
                "q", [&](serve::ServeResponse) { callbacks.fetch_add(1); });
            if (admitted.ok()) accepted.fetch_add(1);
          }
        });
      }
      for (auto& th : submitters) th.join();
      // ~Server tears down with batches still in flight and (likely)
      // requests still queued.
    }
    ASSERT_EQ(callbacks.load(), accepted.load());
    // Exactly-once emission through teardown: 800 submissions -> 800 wide
    // events, with accepted requests split between answered and
    // shutdown-shed exactly as their callbacks resolved, and every
    // rejection accounted for. (Ring capacity 2048/thread: no drops.)
    const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
    ASSERT_EQ(events.size(), 4u * 200u);
    uint64_t answered = 0, shed = 0, rejected = 0, other = 0;
    for (const obs::WideEvent& e : events) {
      switch (e.outcome) {
        case obs::WideOutcome::kAnswered: ++answered; break;
        case obs::WideOutcome::kShedShutdown: ++shed; break;
        case obs::WideOutcome::kShedExpired: ++shed; break;
        case obs::WideOutcome::kRejected: ++rejected; break;
        default: ++other; break;
      }
    }
    ASSERT_EQ(other, 0u);
    ASSERT_EQ(answered + shed, accepted.load());
    ASSERT_EQ(rejected, 4u * 200u - accepted.load());
  }
}

TEST_F(RaceStressSystemTest, ServeEngineAnswersUnderConcurrentLoadCycles) {
  // Engine-backed serve loop: concurrent blocking callers through the
  // batcher into a shared engine (answer cache on), with the server torn
  // down and rebuilt every round so TSan sees the full construct/serve/
  // destruct edge set against live engine state.
  core::OnlineInference::Options options =
      experiment().kbqa().options().online;
  options.enable_answer_cache = true;
  const auto engine = MakeEngine(options);
  const std::vector<std::string> questions = BenchmarkQuestions(12, 555);
  const std::vector<core::AnswerResult> reference =
      engine->AnswerAll(questions, 1);
  for (int round = 0; round < 5; ++round) {
    serve::ServingOptions serving;
    serving.num_workers = 3;
    serving.max_batch_size = 4;
    serving.max_batch_wait = std::chrono::microseconds(100);
    const auto server = serve::Server::ForEngine(engine.get(), serving);
    std::vector<std::thread> callers;
    for (int t = 0; t < 3; ++t) {
      callers.emplace_back([&] {
        for (size_t i = 0; i < questions.size(); ++i) {
          serve::ServeResponse response = server->Answer(questions[i]);
          ASSERT_TRUE(response.result.status.ok());
          ASSERT_EQ(response.result.answered, reference[i].answered);
          ASSERT_EQ(response.result.value, reference[i].value);
        }
      });
    }
    for (auto& th : callers) th.join();
  }
}

// ---------- Live KB mutation (DESIGN.md §10) ----------

TEST_F(RaceStressSystemTest, LiveEngineAnswerAllAcrossMutationsAndSwaps) {
  // Reader threads batch-answer through a LiveKbqaEngine while a mutator
  // thread applies overlay batches and forces merges, so every RCU edge is
  // exercised concurrently: Pin() against Apply's snapshot publish, the
  // merge thread's base rebuild + swap, and the publish hook rebuilding
  // the per-epoch engine state that readers acquire mid-batch.
  const std::string path = ::testing::TempDir() + "/race_live_kb.bin";
  ASSERT_TRUE(experiment().world().kb.Save(path).ok());
  auto loaded = rdf::KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok());
  rdf::MutableKb::Options live_options;
  live_options.merge_trigger_ops = 8;
  rdf::MutableKb live(std::move(loaded).value(), live_options);
  const auto engine = experiment().kbqa().MakeLiveEngine(&live);
  ASSERT_NE(engine, nullptr);

  const std::vector<std::string> questions = BenchmarkQuestions(12, 7777);
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    for (int round = 0; round < 15; ++round) {
      for (int i = 0; i < 4; ++i) {
        const std::string tag =
            std::to_string(round) + "_" + std::to_string(i);
        live.AddTriple("race/entity" + tag, "likes", "value" + tag,
                       /*object_is_literal=*/true);
      }
      live.DeleteTriple("race/entity" + std::to_string(round) + "_0",
                        "likes",
                        "value" + std::to_string(round) + "_0");
      live.ForceMerge();
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      do {
        const std::vector<core::AnswerResult> results =
            engine->AnswerAll(questions, 2);
        ASSERT_EQ(results.size(), questions.size());
        for (const core::AnswerResult& r : results) {
          ASSERT_TRUE(r.status.ok());
        }
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  mutator.join();
  for (auto& th : readers) th.join();
  live.WaitForMergeIdle();
  EXPECT_GE(live.merges_completed(), 1u);
  EXPECT_EQ(live.pending_ops(), 0u);
}

TEST_F(RaceStressSystemTest, ServeLiveEngineWideEventsExactlyOnceAcrossSwaps) {
  // The wide-event exactly-once invariant must survive snapshot swaps:
  // submitters race the batcher and a mutator forcing merges underneath
  // the serving engine, and every submission still resolves to exactly
  // one wide event, each stamped with a kb_epoch the KB actually reached.
  const std::string path = ::testing::TempDir() + "/race_serve_kb.bin";
  ASSERT_TRUE(experiment().world().kb.Save(path).ok());
  auto loaded = rdf::KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok());
  rdf::MutableKb::Options live_options;
  live_options.auto_merge = false;
  rdf::MutableKb live(std::move(loaded).value(), live_options);
  const auto engine = experiment().kbqa().MakeLiveEngine(&live);
  ASSERT_NE(engine, nullptr);
  const std::vector<std::string> questions = BenchmarkQuestions(8, 3131);

  obs::WideEvents::ResetForTest();
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> callbacks{0};
  {
    serve::ServingOptions serving;
    serving.num_workers = 3;
    serving.max_batch_size = 4;
    serving.max_batch_wait = std::chrono::microseconds(50);
    const auto server = serve::Server::ForLiveEngine(engine.get(), serving);
    std::atomic<bool> stop{false};
    std::thread mutator([&] {
      for (int round = 0; !stop.load(std::memory_order_acquire); ++round) {
        live.AddTriple("serve/entity" + std::to_string(round), "likes",
                       "value" + std::to_string(round),
                       /*object_is_literal=*/true);
        live.ForceMerge();
      }
    });
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 60; ++i) {
          const Status admitted = server->Submit(
              questions[static_cast<size_t>(i) % questions.size()],
              [&](serve::ServeResponse) { callbacks.fetch_add(1); });
          if (admitted.ok()) accepted.fetch_add(1);
        }
      });
    }
    for (auto& th : submitters) th.join();
    stop.store(true, std::memory_order_release);
    mutator.join();
    // ~Server drains or sheds everything still queued.
  }
  ASSERT_EQ(callbacks.load(), accepted.load());
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 3u * 60u);
  const uint64_t final_epoch = live.epoch();
  EXPECT_GE(final_epoch, 1u);
  for (const obs::WideEvent& e : events) {
    EXPECT_LE(e.kb_epoch, final_epoch);
  }
}

TEST_F(RaceStressSystemTest, ParallelTrainingUnderTsan) {
  // Parallel EM (sharded BuildObservations + dense E-step merge) under the
  // race detector; the bit-identity itself is parallel_test's job.
  core::KbqaOptions options = experiment().kbqa().options();
  options.em.num_threads = 4;
  core::KbqaSystem system(&experiment().world(), options);
  ASSERT_TRUE(system.Train(experiment().train_corpus()).ok());
  EXPECT_GT(system.template_store().num_templates(), 0u);
}

}  // namespace
}  // namespace kbqa
