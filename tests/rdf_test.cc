#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/expanded_predicate.h"
#include "rdf/knowledge_base.h"

namespace kbqa::rdf {
namespace {

// ---------- Dictionary ----------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern("barack obama");
  TermId b = dict.Intern("barack obama");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.GetString(a), "barack obama");
}

TEST(DictionaryTest, IdsAreDense) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
}

TEST(DictionaryTest, LookupNeverInterns) {
  Dictionary dict;
  EXPECT_FALSE(dict.Lookup("ghost").has_value());
  EXPECT_EQ(dict.size(), 0u);
  dict.Intern("real");
  EXPECT_EQ(dict.Lookup("real"), std::optional<TermId>(0));
}

// ---------- Toy KB (Figure 1 of the paper) ----------

/// Builds the paper's Figure 1: Barack Obama (a) -- marriage --> b --
/// person --> Michelle Obama (c); dob/pob/population facts; Honolulu (d).
class ToyKbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    name_ = kb_.AddPredicate("name");
    kb_.SetNamePredicate(name_);
    dob_ = kb_.AddPredicate("dob");
    pob_ = kb_.AddPredicate("pob");
    marriage_ = kb_.AddPredicate("marriage");
    person_ = kb_.AddPredicate("person");
    population_ = kb_.AddPredicate("population");
    date_ = kb_.AddPredicate("date");

    a_ = kb_.AddEntity("person/a");
    b_ = kb_.AddEntity("marriage/b");
    c_ = kb_.AddEntity("person/c");
    d_ = kb_.AddEntity("city/d");

    obama_lit_ = kb_.AddLiteral("barack obama");
    michelle_lit_ = kb_.AddLiteral("michelle obama");
    honolulu_lit_ = kb_.AddLiteral("honolulu");
    y1961_ = kb_.AddLiteral("1961");
    y1964_ = kb_.AddLiteral("1964");
    y1992_ = kb_.AddLiteral("1992");
    pop_ = kb_.AddLiteral("390000");

    kb_.AddTriple(a_, name_, obama_lit_);
    kb_.AddTriple(a_, dob_, y1961_);
    kb_.AddTriple(a_, pob_, d_);
    kb_.AddTriple(a_, marriage_, b_);
    kb_.AddTriple(b_, person_, c_);
    kb_.AddTriple(b_, date_, y1992_);
    kb_.AddTriple(c_, name_, michelle_lit_);
    kb_.AddTriple(c_, dob_, y1964_);
    kb_.AddTriple(d_, name_, honolulu_lit_);
    kb_.AddTriple(d_, population_, pop_);
    kb_.Freeze();
  }

  KnowledgeBase kb_;
  PredId name_, dob_, pob_, marriage_, person_, population_, date_;
  TermId a_, b_, c_, d_;
  TermId obama_lit_, michelle_lit_, honolulu_lit_, y1961_, y1964_, y1992_,
      pop_;
};

TEST_F(ToyKbTest, BasicCounts) {
  EXPECT_EQ(kb_.num_triples(), 10u);
  EXPECT_EQ(kb_.num_predicates(), 7u);
  EXPECT_EQ(kb_.num_entities(), 4u);
  EXPECT_TRUE(kb_.IsEntity(a_));
  EXPECT_TRUE(kb_.IsLiteral(y1961_));
}

TEST_F(ToyKbTest, ObjectsLookup) {
  EXPECT_EQ(kb_.Objects(a_, dob_), (std::vector<TermId>{y1961_}));
  EXPECT_EQ(kb_.Objects(a_, marriage_), (std::vector<TermId>{b_}));
  EXPECT_TRUE(kb_.Objects(a_, population_).empty());
  EXPECT_TRUE(kb_.Objects(y1961_, dob_).empty());  // literal subject
}

TEST_F(ToyKbTest, HasTripleAndConnectingPredicates) {
  EXPECT_TRUE(kb_.HasTriple(d_, population_, pop_));
  EXPECT_FALSE(kb_.HasTriple(d_, population_, y1961_));
  EXPECT_EQ(kb_.ConnectingPredicates(a_, y1961_),
            (std::vector<PredId>{dob_}));
  EXPECT_TRUE(kb_.ConnectingPredicates(a_, y1964_).empty());
}

TEST_F(ToyKbTest, InverseAdjacency) {
  auto in = kb_.In(c_);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0].p, person_);
  EXPECT_EQ(in[0].o, b_);  // In() stores (predicate, subject).
}

TEST_F(ToyKbTest, NameIndex) {
  auto entities = kb_.EntitiesByName("barack obama");
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_EQ(entities[0], a_);
  EXPECT_TRUE(kb_.EntitiesByName("nobody").empty());
  EXPECT_EQ(kb_.EntityName(a_), "barack obama");
  EXPECT_EQ(kb_.EntityName(b_), "marriage/b");  // unnamed CVT falls back
}

TEST_F(ToyKbTest, DuplicateTriplesDeduplicatedAtFreeze) {
  KnowledgeBase kb;
  PredId p = kb.AddPredicate("p");
  TermId s = kb.AddEntity("s");
  TermId o = kb.AddLiteral("o");
  kb.AddTriple(s, p, o);
  kb.AddTriple(s, p, o);
  kb.Freeze();
  EXPECT_EQ(kb.num_triples(), 1u);
}

TEST_F(ToyKbTest, SaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/toy_kb.bin";
  ASSERT_TRUE(kb_.Save(path).ok());
  auto loaded = KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const KnowledgeBase& kb2 = loaded.value();
  EXPECT_EQ(kb2.num_triples(), kb_.num_triples());
  EXPECT_EQ(kb2.num_predicates(), kb_.num_predicates());
  EXPECT_EQ(kb2.num_entities(), kb_.num_entities());
  auto entities = kb2.EntitiesByName("honolulu");
  ASSERT_EQ(entities.size(), 1u);
  EXPECT_EQ(kb2.Objects(entities[0], *kb2.LookupPredicate("population")),
            (std::vector<TermId>{*kb2.LookupNode("390000")}));
  std::remove(path.c_str());
}

TEST_F(ToyKbTest, InjectedShortWriteNeverClobbersGoodSnapshot) {
  std::string path = ::testing::TempDir() + "/crash_safe_kb.bin";
  ASSERT_TRUE(kb_.Save(path).ok());

  // A re-Save over the same path dies mid-write (simulated crash / full
  // disk after 64 bytes). It must fail cleanly...
  KnowledgeBase::SetSaveFailureAfterBytesForTest(64);
  Status crashed = kb_.Save(path);
  KnowledgeBase::SetSaveFailureAfterBytesForTest(-1);
  EXPECT_FALSE(crashed.ok());

  // ...leave the original snapshot loadable...
  auto loaded = KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().num_triples(), kb_.num_triples());
  EXPECT_EQ(loaded.value().num_entities(), kb_.num_entities());

  // ...and clean up its temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  EXPECT_FALSE(std::ifstream(tmp).good());

  // With injection off, the same Save succeeds again (atomic replace).
  ASSERT_TRUE(kb_.Save(path).ok());
  EXPECT_TRUE(KnowledgeBase::Load(path).ok());
  std::remove(path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a kb", f);
  std::fclose(f);
  auto loaded = KnowledgeBase::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(ToyKbTest, LoadMissingFileIsIoError) {
  auto loaded = KnowledgeBase::Load("/nonexistent/path/kb.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(ToyKbTest, SaveLoadPreservesAdjacencyExactly) {
  std::string path = ::testing::TempDir() + "/toy_kb_csr.bin";
  ASSERT_TRUE(kb_.Save(path).ok());
  auto loaded = KnowledgeBase::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const KnowledgeBase& kb2 = loaded.value();

  // The CSR blocks are slurped verbatim, so every Out()/In() range must be
  // element-for-element identical, not just equal as a set.
  ASSERT_EQ(kb2.num_nodes(), kb_.num_nodes());
  for (TermId id = 0; id < kb_.num_nodes(); ++id) {
    auto out1 = kb_.Out(id), out2 = kb2.Out(id);
    ASSERT_EQ(out1.size(), out2.size()) << "node " << id;
    EXPECT_TRUE(std::equal(out1.begin(), out1.end(), out2.begin()));
    auto in1 = kb_.In(id), in2 = kb2.In(id);
    ASSERT_EQ(in1.size(), in2.size()) << "node " << id;
    EXPECT_TRUE(std::equal(in1.begin(), in1.end(), in2.begin()));
    EXPECT_EQ(kb_.IsLiteral(id), kb2.IsLiteral(id));
    EXPECT_EQ(kb_.NodeString(id), kb2.NodeString(id));
  }
  for (const char* name : {"barack obama", "michelle obama", "honolulu"}) {
    auto e1 = kb_.EntitiesByName(name);
    auto e2 = kb2.EntitiesByName(name);
    ASSERT_EQ(e1.size(), e2.size()) << name;
    EXPECT_TRUE(std::equal(e1.begin(), e1.end(), e2.begin()));
  }
  std::remove(path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsVersion1SnapshotCleanly) {
  // A version-1 (pre-CSR) snapshot begins with the old magic. Loading one
  // must yield a clean Corruption status naming the version, not a crash
  // or a silently wrong store.
  constexpr uint64_t kMagicV1 = 0x4b42514152444631ULL;  // "KBQARDF1"
  std::string path = ::testing::TempDir() + "/v1_kb.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&kMagicV1, sizeof(kMagicV1), 1, f), 1u);
  // Plausible-looking v1 payload bytes after the magic.
  uint64_t counts[4] = {3, 1, 0, 2};
  ASSERT_EQ(std::fwrite(counts, sizeof(counts), 1, f), 1u);
  std::fclose(f);

  auto loaded = KnowledgeBase::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("version 1"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsTruncatedSnapshot) {
  std::string path = ::testing::TempDir() + "/trunc_src.bin";
  ASSERT_TRUE(kb_.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);

  // A snapshot cut anywhere must come back as a clean Corruption — never a
  // crash, hang, or garbage-sized allocation.
  std::string cut_path = ::testing::TempDir() + "/trunc_cut.bin";
  for (size_t keep : {bytes.size() / 4, bytes.size() / 2,
                      bytes.size() * 9 / 10, bytes.size() - 1}) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    auto loaded = KnowledgeBase::Load(cut_path);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsCorruptCsrOffsets) {
  std::string path = ::testing::TempDir() + "/corrupt_offsets.bin";
  // This test hand-computes byte positions of the v2 layout, so pin the
  // legacy format explicitly now that Save defaults to v3.
  ASSERT_TRUE(kb_.Save(path, /*format_version=*/2).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Locate the out-CSR block from the (known) v2 layout: magic, node
  // dictionary (count + offsets + blob), is_literal bytes, predicate
  // dictionary, name-predicate id, then edge_count + offsets + edges.
  size_t node_blob = 0, pred_blob = 0;
  for (TermId id = 0; id < kb_.num_nodes(); ++id) {
    node_blob += kb_.NodeString(id).size();
  }
  for (PredId p = 0; p < kb_.num_predicates(); ++p) {
    pred_blob += kb_.PredicateString(p).size();
  }
  const size_t out_csr = 8 + (8 + (kb_.num_nodes() + 1) * 8 + node_blob) +
                         kb_.num_nodes() +
                         (8 + (kb_.num_predicates() + 1) * 8 + pred_blob) + 4;
  const size_t offsets_begin = out_csr + 8;  // past edge_count
  ASSERT_LT(offsets_begin + (kb_.num_nodes() + 1) * 8, bytes.size());

  auto corrupt_u64_at = [&](size_t pos, uint64_t value) {
    std::string mutated = bytes;
    std::memcpy(mutated.data() + pos, &value, sizeof(value));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    return KnowledgeBase::Load(path);
  };

  // offsets[1] jumps past everything: non-monotone and inconsistent with
  // the edge-count header. Must fail *before* any edge-buffer allocation.
  auto non_monotone = corrupt_u64_at(offsets_begin + 8, ~uint64_t{0} / 2);
  ASSERT_FALSE(non_monotone.ok());
  EXPECT_EQ(non_monotone.status().code(), StatusCode::kCorruption);

  // offsets[num_nodes] disagrees with edge_count while staying monotone.
  auto tail_mismatch = corrupt_u64_at(
      offsets_begin + kb_.num_nodes() * 8, kb_.num_triples() + 100);
  ASSERT_FALSE(tail_mismatch.ok());
  EXPECT_EQ(tail_mismatch.status().code(), StatusCode::kCorruption);

  std::remove(path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsOversizedV2CountsBeforeAllocating) {
  // The legacy v2 layout carries raw u64 counts with no checksum. A count
  // that stays under the 2^32 structural cap but exceeds what the file
  // could possibly hold must fail as a clean Corruption *before* any
  // buffer is sized from it — otherwise a 16-byte file can demand a
  // 34 GB offsets array.
  std::string path = ::testing::TempDir() + "/oversized_v2.bin";
  ASSERT_TRUE(kb_.Save(path, /*format_version=*/2).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  auto corrupt_u64_at = [&](std::string mutated, size_t pos, uint64_t value) {
    std::memcpy(mutated.data() + pos, &value, sizeof(value));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    return KnowledgeBase::Load(path);
  };

  // Node-dictionary count claims ~4 billion entries right after the magic.
  auto huge_dict = corrupt_u64_at(bytes, 8, 0xFFFFFFFFull);
  ASSERT_FALSE(huge_dict.ok());
  EXPECT_EQ(huge_dict.status().code(), StatusCode::kCorruption);

  // Out-CSR edge count claims 2^30 edges (an 8 GB buffer), with the
  // offsets tail patched to agree so the count/offsets cross-check alone
  // would not catch the lie.
  size_t node_blob = 0, pred_blob = 0;
  for (TermId id = 0; id < kb_.num_nodes(); ++id) {
    node_blob += kb_.NodeString(id).size();
  }
  for (PredId p = 0; p < kb_.num_predicates(); ++p) {
    pred_blob += kb_.PredicateString(p).size();
  }
  const size_t out_csr = 8 + (8 + (kb_.num_nodes() + 1) * 8 + node_blob) +
                         kb_.num_nodes() +
                         (8 + (kb_.num_predicates() + 1) * 8 + pred_blob) + 4;
  const size_t offsets_tail = out_csr + 8 + kb_.num_nodes() * 8;
  ASSERT_LT(offsets_tail + 8, bytes.size());
  std::string mutated = bytes;
  const uint64_t huge_edges = uint64_t{1} << 30;
  std::memcpy(mutated.data() + out_csr, &huge_edges, sizeof(huge_edges));
  auto huge_csr = corrupt_u64_at(std::move(mutated), offsets_tail, huge_edges);
  ASSERT_FALSE(huge_csr.ok());
  EXPECT_EQ(huge_csr.status().code(), StatusCode::kCorruption);

  std::remove(path.c_str());
}

TEST_F(ToyKbTest, V2SnapshotLoadsIdenticallyThroughV3Reader) {
  // Backward compat: the same frozen store written as v2 and as v3 must
  // load into element-for-element identical in-memory form.
  std::string v2_path = ::testing::TempDir() + "/compat_v2.bin";
  std::string v3_path = ::testing::TempDir() + "/compat_v3.bin";
  ASSERT_TRUE(kb_.Save(v2_path, /*format_version=*/2).ok());
  ASSERT_TRUE(kb_.Save(v3_path, /*format_version=*/3).ok());

  auto from_v2 = KnowledgeBase::Load(v2_path);
  auto from_v3 = KnowledgeBase::Load(v3_path);
  ASSERT_TRUE(from_v2.ok()) << from_v2.status();
  ASSERT_TRUE(from_v3.ok()) << from_v3.status();
  const KnowledgeBase& a = from_v2.value();
  const KnowledgeBase& b = from_v3.value();

  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_predicates(), b.num_predicates());
  EXPECT_EQ(a.num_triples(), b.num_triples());
  EXPECT_EQ(a.name_predicate(), b.name_predicate());
  for (TermId id = 0; id < a.num_nodes(); ++id) {
    EXPECT_EQ(a.NodeString(id), b.NodeString(id));
    EXPECT_EQ(a.IsLiteral(id), b.IsLiteral(id));
    auto out1 = a.Out(id), out2 = b.Out(id);
    ASSERT_EQ(out1.size(), out2.size()) << "node " << id;
    EXPECT_TRUE(std::equal(out1.begin(), out1.end(), out2.begin()));
    auto in1 = a.In(id), in2 = b.In(id);
    ASSERT_EQ(in1.size(), in2.size()) << "node " << id;
    EXPECT_TRUE(std::equal(in1.begin(), in1.end(), in2.begin()));
  }
  for (PredId p = 0; p < a.num_predicates(); ++p) {
    EXPECT_EQ(a.PredicateString(p), b.PredicateString(p));
  }

  // The compressed format must actually compress, even at toy scale.
  std::ifstream f2(v2_path, std::ios::binary | std::ios::ate);
  std::ifstream f3(v3_path, std::ios::binary | std::ios::ate);
  EXPECT_LT(f3.tellg(), f2.tellg());
  f2.close();
  f3.close();
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
}

TEST_F(ToyKbTest, LoadRejectsBitFlippedV3Snapshot) {
  // Any single corrupted byte of a v3 snapshot — magic, section length,
  // payload, or checksum — must come back as a clean Corruption, never a
  // crash, bad_alloc, or a silently different store.
  std::string path = ::testing::TempDir() + "/flip_src.bin";
  ASSERT_TRUE(kb_.Save(path, /*format_version=*/3).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 32u);

  std::string flip_path = ::testing::TempDir() + "/flip_cut.bin";
  for (size_t pos = 0; pos < bytes.size(); pos += 3) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    auto loaded = KnowledgeBase::Load(flip_path);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption) << pos;
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST_F(ToyKbTest, FreezeIsBitIdenticalAcrossThreadCounts) {
  auto build = [](int num_threads) {
    KnowledgeBase kb;
    PredId name = kb.AddPredicate("name");
    kb.SetNamePredicate(name);
    PredId p = kb.AddPredicate("p");
    PredId q = kb.AddPredicate("q");
    std::vector<TermId> ents;
    for (int i = 0; i < 64; ++i) {
      ents.push_back(kb.AddEntity("e" + std::to_string(i)));
    }
    TermId lit = kb.AddLiteral("shared name");
    // Deliberately unsorted insertion order with duplicates.
    for (int i = 63; i >= 0; --i) {
      kb.AddTriple(ents[i], q, ents[(i * 7 + 3) % 64]);
      kb.AddTriple(ents[i], p, ents[(i * 13 + 1) % 64]);
      kb.AddTriple(ents[i], p, ents[(i * 13 + 1) % 64]);  // duplicate
      if (i % 3 == 0) kb.AddTriple(ents[i], name, lit);
    }
    kb.Freeze(num_threads);
    return kb;
  };
  KnowledgeBase kb1 = build(1);
  for (int threads : {2, 4}) {
    KnowledgeBase kbn = build(threads);
    ASSERT_EQ(kbn.num_triples(), kb1.num_triples());
    for (TermId id = 0; id < kb1.num_nodes(); ++id) {
      auto a = kb1.Out(id), b = kbn.Out(id);
      ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
      auto ia = kb1.In(id), ib = kbn.In(id);
      ASSERT_EQ(ia.size(), ib.size()) << "threads=" << threads;
      EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
    }
  }
}

// ---------- Expanded predicates (§6) ----------

class ExpansionTest : public ToyKbTest {
 protected:
  Result<ExpandedKb> Expand(int k, bool name_tail = true) {
    ExpansionOptions options;
    options.max_length = k;
    options.require_name_tail = name_tail;
    return ExpandedKb::Build(kb_, {a_, d_}, {name_}, options);
  }
};

TEST_F(ExpansionTest, FindsSpouseOfPath) {
  auto ekb = Expand(3);
  ASSERT_TRUE(ekb.ok()) << ekb.status();
  PredPath spouse_of = {marriage_, person_, name_};
  auto path_id = ekb.value().paths().Lookup(spouse_of);
  ASSERT_TRUE(path_id.has_value());
  EXPECT_EQ(ekb.value().Objects(a_, *path_id),
            (std::vector<TermId>{michelle_lit_}));
  EXPECT_EQ(ekb.value().paths().ToString(*path_id, kb_),
            "marriage -> person -> name");
}

TEST_F(ExpansionTest, NameTailRuleExcludesWeakPaths) {
  auto ekb = Expand(3);
  ASSERT_TRUE(ekb.ok());
  // marriage -> date (the 1992 wedding) does not end with name: excluded.
  EXPECT_FALSE(ekb.value().paths().Lookup({marriage_, date_}).has_value());
  // marriage -> person -> dob ("Obama's 1964") likewise.
  EXPECT_FALSE(
      ekb.value().paths().Lookup({marriage_, person_, dob_}).has_value());
  // But with the rule off, both appear.
  auto loose = Expand(3, /*name_tail=*/false);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose.value().paths().Lookup({marriage_, date_}).has_value());
  EXPECT_TRUE(
      loose.value().paths().Lookup({marriage_, person_, dob_}).has_value());
}

TEST_F(ExpansionTest, RespectsLengthLimit) {
  auto ekb = Expand(1);
  ASSERT_TRUE(ekb.ok());
  EXPECT_EQ(ekb.value().NumTriplesOfLength(2), 0u);
  EXPECT_EQ(ekb.value().NumTriplesOfLength(3), 0u);
  // Direct predicates are present: dob, pob, marriage, name, population.
  EXPECT_GT(ekb.value().NumTriplesOfLength(1), 0u);
}

TEST_F(ExpansionTest, LengthOnePathsAreUnrestricted) {
  auto ekb = Expand(3);
  ASSERT_TRUE(ekb.ok());
  EXPECT_TRUE(ekb.value().paths().Lookup({dob_}).has_value());
  EXPECT_TRUE(ekb.value().paths().Lookup({marriage_}).has_value());
}

TEST_F(ExpansionTest, SeedsOnly) {
  ExpansionOptions options;
  options.max_length = 3;
  auto ekb = ExpandedKb::Build(kb_, {d_}, {name_}, options);
  ASSERT_TRUE(ekb.ok());
  // Only Honolulu was seeded; Obama has no materialized triples.
  EXPECT_TRUE(ekb.value().Out(a_).empty());
  EXPECT_FALSE(ekb.value().Out(d_).empty());
}

TEST_F(ExpansionTest, DuplicateSeedsDontDoubleTriples) {
  ExpansionOptions options;
  options.max_length = 1;
  auto once = ExpandedKb::Build(kb_, {d_}, {name_}, options);
  auto twice = ExpandedKb::Build(kb_, {d_, d_}, {name_}, options);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(once.value().num_triples(), twice.value().num_triples());
}

TEST_F(ExpansionTest, TripleBudgetIsEnforced) {
  ExpansionOptions options;
  options.max_length = 3;
  options.max_triples = 2;
  auto ekb = ExpandedKb::Build(kb_, {a_, d_}, {name_}, options);
  ASSERT_FALSE(ekb.ok());
  EXPECT_EQ(ekb.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExpansionTest, ConnectingPaths) {
  auto ekb = Expand(3);
  ASSERT_TRUE(ekb.ok());
  auto paths = ekb.value().ConnectingPaths(a_, michelle_lit_);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(ekb.value().paths().GetPath(paths[0]),
            (PredPath{marriage_, person_, name_}));
}

TEST_F(ExpansionTest, ObjectsViaPathWalksBaseKb) {
  // Works for entities that were never seeded (online lookups).
  EXPECT_EQ(ObjectsViaPath(kb_, a_, {marriage_, person_, name_}),
            (std::vector<TermId>{michelle_lit_}));
  EXPECT_EQ(ObjectsViaPath(kb_, a_, {pob_, name_}),
            (std::vector<TermId>{honolulu_lit_}));
  EXPECT_TRUE(ObjectsViaPath(kb_, a_, {population_}).empty());
  // Paths through literals are dead ends.
  EXPECT_TRUE(ObjectsViaPath(kb_, a_, {dob_, dob_}).empty());
}

TEST_F(ExpansionTest, PathDictionaryDistinguishesPrefixes) {
  PathDictionary paths;
  PathId p1 = paths.Intern({1, 2});
  PathId p2 = paths.Intern({1});
  PathId p3 = paths.Intern({1, 2});
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p1, p3);
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(ExpansionTest, RequiresFrozenKb) {
  KnowledgeBase kb;
  kb.AddPredicate("p");
  ExpansionOptions options;
  auto ekb = ExpandedKb::Build(kb, {}, {}, options);
  EXPECT_FALSE(ekb.ok());
  EXPECT_EQ(ekb.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExpansionTest, NumPathsOfLengthCountsBackedPathsOnly) {
  auto ekb = Expand(3);
  ASSERT_TRUE(ekb.ok());
  // Length-3: exactly marriage -> person -> name (from a).
  EXPECT_EQ(ekb.value().NumPathsOfLength(3), 1u);
  // Length-2: pob -> name (a -> honolulu).
  EXPECT_EQ(ekb.value().NumPathsOfLength(2), 1u);
}

}  // namespace
}  // namespace kbqa::rdf
