// Tests for the serving front door (serve::Server): admission control
// rejects a saturated queue *at Submit* (never enqueue-then-expire),
// queue-expired requests are shed with kDeadlineExceeded before the
// handler — and, engine-backed, before template matching (online.answers
// stays flat) — batches coalesce, and teardown resolves every accepted
// callback exactly once.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/online.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/wide_event.h"
#include "serve/exposition.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/status.h"

namespace kbqa::serve {
namespace {

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      std::string_view name) {
  const auto* counter = snapshot.counter(name);
  return counter == nullptr ? 0 : counter->value;
}

obs::MetricsSnapshot GlobalSnapshot() {
  return obs::MetricsRegistry::Global().Snapshot();
}

core::AnswerResult EchoResult(const std::string& question) {
  core::AnswerResult result;
  result.answered = true;
  result.value = question;
  return result;
}

/// A handler whose requests block until Open() — the lever for
/// deterministically saturating the queue.
struct GatedHandler {
  Mutex mu;
  CondVar cv;
  bool open GUARDED_BY(mu) = false;
  std::atomic<int> entered{0};

  Server::Handler AsHandler() {
    return [this](const std::string& question, const core::AnswerOptions&) {
      entered.fetch_add(1);
      {
        MutexLock lock(mu);
        while (!open) cv.Wait(mu);
      }
      return EchoResult(question);
    };
  }

  void Open() {
    {
      MutexLock lock(mu);
      open = true;
    }
    cv.NotifyAll();
  }
};

/// Thread-safe collector of completed responses.
struct Collector {
  Mutex mu;
  std::vector<ServeResponse> responses GUARDED_BY(mu);

  Server::Callback Add() {
    return [this](ServeResponse response) {
      MutexLock lock(mu);
      responses.push_back(std::move(response));
    };
  }

  size_t Count() {
    MutexLock lock(mu);
    return responses.size();
  }

  void WaitForCount(size_t n) {
    for (int spin = 0; spin < 10000 && Count() < n; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

void WaitForQueueDrained(Server& server) {
  for (int spin = 0; spin < 10000 && server.stats().queue_depth > 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServeTest, AnswerRoundTripsThroughHandler) {
  ServingOptions options;
  options.num_workers = 2;
  Server server(
      [](const std::string& question, const core::AnswerOptions&) {
        return EchoResult(question);
      },
      options);
  ServeResponse response = server.Answer("who is the spouse of alice?");
  EXPECT_TRUE(response.result.status.ok());
  EXPECT_EQ(response.result.value, "who is the spouse of alice?");
  EXPECT_GE(response.batch_size, 1u);
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServeTest, SaturatedQueueRejectsAtAdmissionNotEnqueueThenExpire) {
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_queue_depth = 2;
  options.max_batch_wait = std::chrono::microseconds(0);
  // A generous deadline: a wrongly-enqueued overflow request would sit in
  // the queue and eventually come back kDeadlineExceeded instead of the
  // immediate kUnavailable this test demands.
  options.default_timeout = std::chrono::seconds(30);
  Server server(gate.AsHandler(), options);
  Collector accepted;

  // R0 occupies the worker (handler gated). The batcher pops it
  // immediately, so wait until it is *out* of the queue.
  ASSERT_TRUE(server.Submit("r0", accepted.Add()).ok());
  while (gate.entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // R1 gets popped by the batcher too (it parks waiting for an in-flight
  // slot); wait for the pop so R2+R3 deterministically fill the queue.
  ASSERT_TRUE(server.Submit("r1", accepted.Add()).ok());
  WaitForQueueDrained(server);
  ASSERT_TRUE(server.Submit("r2", accepted.Add()).ok());
  ASSERT_TRUE(server.Submit("r3", accepted.Add()).ok());
  ASSERT_EQ(server.stats().queue_depth, 2u);

  // Queue full: R4 must be rejected *now*, with kUnavailable, and its
  // callback must never run.
  std::atomic<bool> rejected_callback_ran{false};
  Status rejected = server.Submit(
      "r4", [&](ServeResponse) { rejected_callback_ran = true; });
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected, 1u);

  gate.Open();
  accepted.WaitForCount(4);
  ASSERT_EQ(accepted.Count(), 4u);
  {
    MutexLock lock(accepted.mu);
    for (const ServeResponse& response : accepted.responses) {
      // Never kDeadlineExceeded: admission control pushed back instead of
      // letting requests rot in the queue.
      EXPECT_TRUE(response.result.status.ok())
          << response.result.status.ToString();
    }
  }
  EXPECT_FALSE(rejected_callback_ran.load());
  const ServingStats stats = server.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.shed_expired, 0u);
}

TEST(ServeTest, ExpiredInQueueIsShedWithoutInvokingHandler) {
  const obs::MetricsSnapshot before = GlobalSnapshot();
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_batch_wait = std::chrono::microseconds(0);
  Server server(gate.AsHandler(), options);
  Collector collector;

  ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
  while (gate.entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // R1 and R2 with deadlines that lapse while they wait behind R0 (the
  // dispatcher sheds expired requests even while stalled on an in-flight
  // slot, so these resolve without the gate opening).
  core::AnswerOptions expired;
  expired.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  ASSERT_TRUE(server.Submit("r1", expired, collector.Add()).ok());
  ASSERT_TRUE(server.Submit("r2", expired, collector.Add()).ok());
  collector.WaitForCount(2);  // the two shed requests, R0 still gated
  ASSERT_EQ(collector.Count(), 2u);
  {
    MutexLock lock(collector.mu);
    for (const ServeResponse& response : collector.responses) {
      EXPECT_EQ(response.result.status.code(),
                StatusCode::kDeadlineExceeded);
      EXPECT_FALSE(response.result.answered);
      EXPECT_EQ(response.service_ns, 0u);  // never entered the handler
    }
  }
  EXPECT_EQ(gate.entered.load(), 1);  // only R0
  EXPECT_EQ(server.stats().shed_expired, 2u);

  gate.Open();
  collector.WaitForCount(3);
  EXPECT_EQ(server.stats().completed, 1u);
  const obs::MetricsSnapshot after = GlobalSnapshot();
  EXPECT_EQ(CounterValue(after, "online.serve.shed_expired") -
                CounterValue(before, "online.serve.shed_expired"),
            2u);
}

TEST(ServeTest, BatcherCoalescesQueuedRequests) {
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 8;
  options.max_inflight_batches = 1;
  options.max_batch_wait = std::chrono::milliseconds(5);
  Server server(gate.AsHandler(), options);
  Collector collector;

  ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
  while (gate.entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Five requests pile up while the single worker is gated on r0; they
  // must ride one coalesced batch.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(server.Submit("r" + std::to_string(i), collector.Add()).ok());
  }
  gate.Open();
  collector.WaitForCount(6);
  ASSERT_EQ(collector.Count(), 6u);
  size_t coalesced = 0;
  {
    MutexLock lock(collector.mu);
    for (const ServeResponse& response : collector.responses) {
      ASSERT_TRUE(response.result.status.ok());
      if (response.batch_size == 5u) ++coalesced;
    }
  }
  EXPECT_EQ(coalesced, 5u);
  EXPECT_EQ(server.stats().batches, 2u);  // {r0}, {r1..r5}
}

TEST(ServeTest, DefaultTimeoutBecomesRequestDeadline) {
  std::atomic<bool> saw_deadline{false};
  ServingOptions options;
  options.default_timeout = std::chrono::seconds(30);
  Server server(
      [&](const std::string& question, const core::AnswerOptions& opts) {
        saw_deadline = opts.deadline.has_value();
        return EchoResult(question);
      },
      options);
  ServeResponse response = server.Answer("q");
  EXPECT_TRUE(response.result.status.ok());
  EXPECT_TRUE(saw_deadline.load());
}

TEST(ServeTest, DestructionResolvesEveryAcceptedCallbackExactlyOnce) {
  GatedHandler gate;
  Collector collector;
  {
    ServingOptions options;
    options.num_workers = 1;
    options.max_batch_size = 1;
    options.max_inflight_batches = 1;
    options.max_batch_wait = std::chrono::microseconds(0);
    Server server(gate.AsHandler(), options);
    ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
    while (gate.entered.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(
          server.Submit("r" + std::to_string(i), collector.Add()).ok());
    }
    // Tear down with the worker still gated; open the gate mid-teardown.
    std::thread opener([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate.Open();
    });
    // ~Server: stops admission, sheds what is still queued, drains the
    // in-flight request.
    opener.detach();
  }
  ASSERT_EQ(collector.Count(), 4u);
  size_t ok = 0, unavailable = 0;
  {
    MutexLock lock(collector.mu);
    for (const ServeResponse& response : collector.responses) {
      if (response.result.status.ok()) {
        ++ok;
      } else if (response.result.status.code() ==
                 StatusCode::kUnavailable) {
        ++unavailable;
      }
    }
  }
  EXPECT_EQ(ok + unavailable, 4u);
  EXPECT_GE(ok, 1u);           // r0 was in the handler, it completes
  EXPECT_GE(unavailable, 1u);  // the tail of the queue is shed
}

TEST(ServeTest, SubmitAfterShutdownStartsIsRejected) {
  // Destruction is covered above; here a still-live server that has begun
  // stopping must reject instead of accepting work it will never run.
  // (Modeled via queue-full + stopping in one: simplest observable is the
  // blocking Answer wrapper mapping a rejection into its result.)
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_queue_depth = 1;
  options.max_batch_wait = std::chrono::microseconds(0);
  Server server(gate.AsHandler(), options);
  Collector collector;
  ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
  while (gate.entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.Submit("r1", collector.Add()).ok());
  WaitForQueueDrained(server);
  ASSERT_TRUE(server.Submit("r2", collector.Add()).ok());
  // Queue (depth 1) holds r2: a blocking Answer must come back rejected,
  // not deadlock waiting behind a full queue.
  ServeResponse rejected = server.Answer("r3");
  EXPECT_EQ(rejected.result.status.code(), StatusCode::kUnavailable);
  gate.Open();
  collector.WaitForCount(3);
  EXPECT_EQ(collector.Count(), 3u);
}

// ---------- Wide events (DESIGN.md §8) ----------

size_t CountOutcome(const std::vector<obs::WideEvent>& events,
                    obs::WideOutcome outcome) {
  size_t n = 0;
  for (const obs::WideEvent& e : events) n += e.outcome == outcome ? 1 : 0;
  return n;
}

TEST(WideEventServeTest, EveryServedOutcomeEmitsExactlyOneEvent) {
  obs::WideEvents::ResetForTest();
  ServingOptions options;
  options.num_workers = 2;
  Collector collector;
  {
    Server server(
        [](const std::string& question, const core::AnswerOptions&) {
          core::AnswerResult result;
          if (question == "ok") {
            result.answered = true;
          } else if (question == "late") {
            result.status = Status::DeadlineExceeded("clipped");
          } else if (question == "boom") {
            result.status = Status::Internal("handler failure");
          }
          return result;  // "none": ok status, unanswered
        },
        options);
    for (const char* q : {"ok", "none", "late", "boom"}) {
      ASSERT_TRUE(server.Submit(q, collector.Add()).ok());
    }
    collector.WaitForCount(4);
  }
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kAnswered), 1u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kUnanswered), 1u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kDeadlineExceeded), 1u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kError), 1u);
  std::vector<uint64_t> trace_ids;
  for (const obs::WideEvent& e : events) {
    EXPECT_NE(e.trace_id, 0u);
    trace_ids.push_back(e.trace_id);
    // The latency decomposition invariants: stage sums live inside the
    // handler's service time, and queue + batch + service fit inside the
    // end-to-end total (all measured on one clock).
    EXPECT_LE(e.StageNsSum(), e.service_ns);
    EXPECT_LE(e.queue_wait_ns + e.batch_wait_ns + e.service_ns, e.total_ns);
    EXPECT_GT(e.total_ns, 0u);
    EXPECT_GE(e.batch_size, 1u);
    EXPECT_FALSE(e.has_deadline);
  }
  std::sort(trace_ids.begin(), trace_ids.end());
  EXPECT_EQ(std::unique(trace_ids.begin(), trace_ids.end()),
            trace_ids.end());
}

// Satellite: a request shed while queued must carry its queue wait, zero
// stage records (it never entered the pipeline), and outcome=shed_expired.
TEST(WideEventServeTest, InQueueShedCarriesQueueWaitAndZeroStages) {
  obs::WideEvents::ResetForTest();
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_batch_wait = std::chrono::microseconds(0);
  Collector collector;
  {
    Server server(gate.AsHandler(), options);
    ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
    while (gate.entered.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    core::AnswerOptions expired;
    expired.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    ASSERT_TRUE(server.Submit("r1", expired, collector.Add()).ok());
    collector.WaitForCount(2);
    gate.Open();
    collector.WaitForCount(2);
  }
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(CountOutcome(events, obs::WideOutcome::kShedExpired), 1u);
  for (const obs::WideEvent& e : events) {
    if (e.outcome != obs::WideOutcome::kShedExpired) continue;
    EXPECT_GT(e.queue_wait_ns, 0u);
    EXPECT_EQ(e.service_ns, 0u);
    EXPECT_EQ(e.batch_wait_ns, 0u);
    EXPECT_EQ(e.total_ns, e.queue_wait_ns);
    EXPECT_TRUE(e.has_deadline);
    EXPECT_LE(e.deadline_budget_ns, 0);  // it was shed *because* it expired
    EXPECT_EQ(e.StageNsSum(), 0u);
    for (const obs::StageRecord& stage : e.stages) {
      EXPECT_EQ(stage.count, 0u);
    }
  }
}

// Satellite: an admission-rejected request — whose callback never runs —
// still produces exactly one wide event, tagged rejected.
TEST(WideEventServeTest, AdmissionRejectionEmitsRejectedEvent) {
  obs::WideEvents::ResetForTest();
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_queue_depth = 1;
  options.max_batch_wait = std::chrono::microseconds(0);
  Collector collector;
  std::atomic<bool> rejected_callback_ran{false};
  {
    Server server(gate.AsHandler(), options);
    ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
    while (gate.entered.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(server.Submit("r1", collector.Add()).ok());
    WaitForQueueDrained(server);
    ASSERT_TRUE(server.Submit("r2", collector.Add()).ok());
    const Status rejected = server.Submit(
        "overflow", [&](ServeResponse) { rejected_callback_ran = true; });
    ASSERT_EQ(rejected.code(), StatusCode::kUnavailable);
    gate.Open();
    collector.WaitForCount(3);
  }
  EXPECT_FALSE(rejected_callback_ran.load());
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kAnswered), 3u);
  ASSERT_EQ(CountOutcome(events, obs::WideOutcome::kRejected), 1u);
  for (const obs::WideEvent& e : events) {
    if (e.outcome != obs::WideOutcome::kRejected) continue;
    EXPECT_EQ(e.question_bytes, std::string("overflow").size());
    EXPECT_EQ(e.service_ns, 0u);
    EXPECT_EQ(e.StageNsSum(), 0u);
  }
}

TEST(WideEventServeTest, ShutdownShedsEmitShedShutdownEvents) {
  obs::WideEvents::ResetForTest();
  GatedHandler gate;
  Collector collector;
  {
    ServingOptions options;
    options.num_workers = 1;
    options.max_batch_size = 1;
    options.max_inflight_batches = 1;
    options.max_batch_wait = std::chrono::microseconds(0);
    Server server(gate.AsHandler(), options);
    ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
    while (gate.entered.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(
          server.Submit("r" + std::to_string(i), collector.Add()).ok());
    }
    std::thread opener([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      gate.Open();
    });
    opener.detach();
  }
  ASSERT_EQ(collector.Count(), 4u);
  // Exactly one event per accepted request, split between served and
  // shutdown-shed exactly as the callbacks were.
  size_t ok = 0;
  {
    MutexLock lock(collector.mu);
    for (const ServeResponse& response : collector.responses) {
      ok += response.result.status.ok() ? 1 : 0;
    }
  }
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kAnswered), ok);
  EXPECT_EQ(CountOutcome(events, obs::WideOutcome::kShedShutdown), 4 - ok);
}

TEST(WideEventServeTest, SamplePeriodZeroSuppressesAllEvents) {
  obs::WideEvents::ResetForTest();
  obs::WideEvents::SetSamplePeriod(0);
  ServingOptions options;
  Server server(
      [](const std::string& question, const core::AnswerOptions&) {
        return EchoResult(question);
      },
      options);
  EXPECT_TRUE(server.Answer("q").result.status.ok());
  EXPECT_TRUE(obs::WideEvents::Drain().empty());
  obs::WideEvents::SetSamplePeriod(1);
}

TEST(SloServeTest, TerminalOutcomesFeedTheSloMonitorUnsampled) {
  obs::WideEvents::ResetForTest();
  // Sampling off: SLO accounting must still see every terminal outcome.
  obs::WideEvents::SetSamplePeriod(0);
  obs::SloSpec spec;
  spec.latency_threshold_ns = 0;  // no latency criterion in this test
  obs::SloMonitor slo(spec);
  GatedHandler gate;
  ServingOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.max_inflight_batches = 1;
  options.max_batch_wait = std::chrono::microseconds(0);
  options.slo = &slo;
  Collector collector;
  {
    Server server(gate.AsHandler(), options);
    ASSERT_TRUE(server.Submit("r0", collector.Add()).ok());
    while (gate.entered.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    core::AnswerOptions expired;
    expired.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    ASSERT_TRUE(server.Submit("r1", expired, collector.Add()).ok());
    collector.WaitForCount(2);  // r1 shed while r0 is still gated
    gate.Open();
    collector.WaitForCount(2);
  }
  obs::WideEvents::SetSamplePeriod(1);
  EXPECT_EQ(slo.TotalGood(), 1u);  // r0 served OK
  EXPECT_EQ(slo.TotalBad(), 1u);   // r1 shed
}

// ---------- Exposition endpoints ----------

TEST(ExpositionServerTest, HandlePathRoutesAllEndpoints) {
  obs::WideEvents::ResetForTest();
  obs::MetricsRegistry::Global().GetCounter("serve.exposition.probe")->Add(1);
  obs::WideEvent e;
  e.trace_id = 99;
  e.outcome = obs::WideOutcome::kAnswered;
  obs::WideEvents::Record(e);
  obs::SloMonitor slo(obs::SloSpec{});
  slo.Record(true, obs::NowSteadyNs());
  ExpositionOptions options;
  options.slo = &slo;
  options.statusz_extra = [](std::string* out) { *out += "extra: yes\n"; };

  int status = 0;
  std::string type;
  std::string body =
      ExpositionServer::HandlePath(options, "/", &status, &type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("/metricsz"), std::string::npos);

  body = ExpositionServer::HandlePath(options, "/metricsz", &status, &type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("serve.exposition.probe"), std::string::npos);
  body = ExpositionServer::HandlePath(options, "/metricsz?format=json",
                                      &status, &type);
  EXPECT_EQ(type, "application/json");
  EXPECT_NE(body.find("\"counters\""), std::string::npos);

  body = ExpositionServer::HandlePath(options, "/statusz", &status, &type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("build.compiler"), std::string::npos);
  EXPECT_NE(body.find("uptime_s"), std::string::npos);
  EXPECT_NE(body.find("process.resident_bytes"), std::string::npos);
  EXPECT_NE(body.find("extra: yes"), std::string::npos);

  body = ExpositionServer::HandlePath(options, "/eventz?n=5", &status, &type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"trace_id\":99"), std::string::npos);

  body = ExpositionServer::HandlePath(options, "/slo", &status, &type);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"short_burn_rate\""), std::string::npos);
  EXPECT_NE(body.find("\"firing\":false"), std::string::npos);

  body = ExpositionServer::HandlePath(options, "/nosuch", &status, &type);
  EXPECT_EQ(status, 404);

  // Without an SLO monitor attached, /slo 404s instead of crashing.
  ExpositionOptions bare;
  body = ExpositionServer::HandlePath(bare, "/slo", &status, &type);
  EXPECT_EQ(status, 404);
}

TEST(ExpositionServerTest, ServesHttpOverARealSocket) {
  ExpositionOptions options;
  options.port = 0;  // ephemeral
  auto started = ExpositionServer::Start(options);
  ASSERT_TRUE(started.ok()) << started.status();
  std::unique_ptr<ExpositionServer> server = std::move(started).value();
  ASSERT_GT(server->port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /statusz HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("build.compiler"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 1u);
}

// ---------- Engine-backed (Small experiment) ----------

class ServeEngineTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const eval::Experiment* const kExperiment = [] {
      auto built = eval::Experiment::Build(eval::ExperimentConfig::Small());
      if (!built.ok()) {
        ADD_FAILURE() << built.status();
        return static_cast<eval::Experiment*>(nullptr);
      }
      return const_cast<eval::Experiment*>(
          std::move(built).value().release());
    }();
    return *kExperiment;
  }

  static std::unique_ptr<core::OnlineInference> MakeEngine() {
    const core::KbqaSystem& kbqa = experiment().kbqa();
    core::OnlineInference::Options options = kbqa.options().online;
    options.enable_answer_cache = true;
    return std::make_unique<core::OnlineInference>(
        &experiment().world().kb, &experiment().world().taxonomy,
        &kbqa.ner(), &kbqa.template_store(), &kbqa.expanded_kb().paths(),
        options);
  }

  static std::string SomeQuestion() {
    return experiment().train_corpus().pairs.front().question;
  }
};

TEST_F(ServeEngineTest, ServesRealQuestionsThroughAnswerCached) {
  auto engine = MakeEngine();
  ServingOptions options;
  options.num_workers = 2;
  auto server = Server::ForEngine(engine.get(), options);
  const std::string question = SomeQuestion();
  ServeResponse response = server->Answer(question);
  EXPECT_TRUE(response.result.status.ok());
  core::AnswerResult direct = engine->Answer(question);
  EXPECT_EQ(response.result.answered, direct.answered);
  EXPECT_EQ(response.result.value, direct.value);
}

TEST_F(ServeEngineTest, QueueExpiredRequestNeverEntersTemplateMatching) {
  auto engine = MakeEngine();
  ServingOptions options;
  options.num_workers = 1;
  auto server = Server::ForEngine(engine.get(), options);
  // Warm: prove the pipeline counters move for a served request...
  const obs::MetricsSnapshot before_served = GlobalSnapshot();
  ServeResponse served = server->Answer(SomeQuestion());
  EXPECT_TRUE(served.result.status.ok());
  const obs::MetricsSnapshot after_served = GlobalSnapshot();
  EXPECT_EQ(CounterValue(after_served, "online.answers") -
                CounterValue(before_served, "online.answers"),
            1u);

  // ...then an already-expired request: shed in the serving layer, so the
  // engine's stage counters must not move at all — it never reaches
  // template matching (or NER, or anything else).
  core::AnswerOptions expired;
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  ServeResponse shed = server->Answer(SomeQuestion(), expired);
  EXPECT_EQ(shed.result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(shed.result.answered);
  const obs::MetricsSnapshot after_shed = GlobalSnapshot();
  EXPECT_EQ(CounterValue(after_shed, "online.answers"),
            CounterValue(after_served, "online.answers"));
  EXPECT_EQ(CounterValue(after_shed, "online.deadline_exceeded"),
            CounterValue(after_served, "online.deadline_exceeded"));
  EXPECT_EQ(CounterValue(after_shed, "online.serve.shed_expired") -
                CounterValue(after_served, "online.serve.shed_expired"),
            1u);
  EXPECT_EQ(server->stats().shed_expired, 1u);
}

TEST_F(ServeEngineTest, EngineStampsStageRecordsIntoWideEvent) {
  obs::WideEvents::ResetForTest();
  auto engine = MakeEngine();
  ServingOptions options;
  options.num_workers = 1;
  auto server = Server::ForEngine(engine.get(), options);
  ServeResponse response = server->Answer(SomeQuestion());
  ASSERT_TRUE(response.result.status.ok());
  server.reset();
  const std::vector<obs::WideEvent> events = obs::WideEvents::Drain();
  ASSERT_EQ(events.size(), 1u);
  const obs::WideEvent& e = events.front();
  EXPECT_EQ(e.outcome, response.result.answered
                           ? obs::WideOutcome::kAnswered
                           : obs::WideOutcome::kUnanswered);
  // The engine anchored the stage clock at the server's service-start read
  // and stamped the pipeline stages: NER always runs, the candidate walk
  // closes with a template_match mark, and the stage sum fits inside the
  // service time measured on the same clock.
  EXPECT_GE(
      e.stages[static_cast<size_t>(obs::WideStage::kNer)].count, 1u);
  EXPECT_GE(
      e.stages[static_cast<size_t>(obs::WideStage::kTemplateMatch)].count,
      1u);
  EXPECT_GT(e.StageNsSum(), 0u);
  EXPECT_LE(e.StageNsSum(), e.service_ns);
  EXPECT_EQ(e.service_ns, response.service_ns);
  // First ask through a fresh engine: one whole-question memo miss.
  EXPECT_EQ(e.answer_cache_misses, 1u);
  EXPECT_EQ(e.answer_cache_hits, 0u);
}

}  // namespace
}  // namespace kbqa::serve
