#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "taxonomy/taxonomy.h"

namespace kbqa::taxonomy {
namespace {

class TaxonomyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    company_ = tax_.AddCategory("$company");
    fruit_ = tax_.AddCategory("$fruit");
    city_ = tax_.AddCategory("$city");
    apple_ = 100;  // arbitrary TermId
    tax_.AddEntityCategory(apple_, company_, 1.0);
    tax_.AddEntityCategory(apple_, fruit_, 3.0);  // the fruit sense is prior
    tax_.AddContextAffinity(company_, "headquarter", 4.0);
    tax_.AddContextAffinity(company_, "revenue", 4.0);
    tax_.AddContextAffinity(fruit_, "calories", 4.0);
  }

  Taxonomy tax_;
  CategoryId company_, fruit_, city_;
  rdf::TermId apple_;
};

TEST_F(TaxonomyTest, CategoryInterningAndLookup) {
  EXPECT_EQ(tax_.num_categories(), 3u);
  EXPECT_EQ(tax_.AddCategory("$city"), city_);  // idempotent
  EXPECT_EQ(tax_.LookupCategory("$fruit"), std::optional<CategoryId>(fruit_));
  EXPECT_FALSE(tax_.LookupCategory("$ghost").has_value());
  EXPECT_EQ(tax_.CategoryName(company_), "$company");
}

TEST_F(TaxonomyTest, PriorsAreNormalizedAndSorted) {
  auto cats = tax_.CategoriesOf(apple_);
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0].category, fruit_);  // 3.0 weight dominates
  EXPECT_NEAR(cats[0].probability, 0.75, 1e-9);
  EXPECT_NEAR(cats[1].probability, 0.25, 1e-9);
  double sum = cats[0].probability + cats[1].probability;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(TaxonomyTest, UnknownEntityHasNoCategories) {
  EXPECT_TRUE(tax_.CategoriesOf(999).empty());
  EXPECT_FALSE(tax_.HasCategories(999));
  EXPECT_TRUE(tax_.HasCategories(apple_));
}

TEST_F(TaxonomyTest, ContextFlipsTheApple) {
  // The paper's example: "what is the headquarter of apple" must
  // conceptualize apple to $company, not $fruit (§1.3).
  std::vector<std::string> context = {"what", "is", "the", "headquarter",
                                      "of"};
  auto cats = tax_.Conceptualize(apple_, context);
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0].category, company_);
  EXPECT_GT(cats[0].probability, 0.5);
}

TEST_F(TaxonomyTest, FruitContextKeepsFruit) {
  std::vector<std::string> context = {"how", "many", "calories", "are", "in"};
  auto cats = tax_.Conceptualize(apple_, context);
  EXPECT_EQ(cats[0].category, fruit_);
  EXPECT_GT(cats[0].probability, 0.9);
}

TEST_F(TaxonomyTest, NeutralContextFallsBackToPrior) {
  std::vector<std::string> context = {"tell", "me", "about"};
  auto cats = tax_.Conceptualize(apple_, context);
  EXPECT_EQ(cats[0].category, fruit_);
  EXPECT_NEAR(cats[0].probability, 0.75, 1e-9);
}

TEST_F(TaxonomyTest, ConceptualizationIsNormalized) {
  std::vector<std::string> context = {"headquarter"};
  auto cats = tax_.Conceptualize(apple_, context);
  double sum = 0;
  for (const auto& sc : cats) sum += sc.probability;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(TaxonomyTest, AffinityMatchingIsCaseInsensitive) {
  std::vector<std::string> context = {"HEADQUARTER"};
  auto cats = tax_.Conceptualize(apple_, context);
  EXPECT_EQ(cats[0].category, company_);
}

TEST_F(TaxonomyTest, RepeatedEvidenceAccumulates) {
  Taxonomy tax;
  CategoryId a = tax.AddCategory("$a");
  CategoryId b = tax.AddCategory("$b");
  tax.AddEntityCategory(7, a, 1.0);
  tax.AddEntityCategory(7, b, 1.0);
  tax.AddEntityCategory(7, a, 2.0);  // accumulate to 3.0
  auto cats = tax.CategoriesOf(7);
  EXPECT_EQ(cats[0].category, a);
  EXPECT_NEAR(cats[0].probability, 0.75, 1e-9);
}

TEST_F(TaxonomyTest, SingleCategoryEntityIgnoresContext) {
  Taxonomy tax;
  CategoryId only = tax.AddCategory("$only");
  tax.AddEntityCategory(5, only, 1.0);
  tax.AddContextAffinity(only, "word", 10.0);
  auto cats = tax.Conceptualize(5, std::vector<std::string>{"word"});
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_NEAR(cats[0].probability, 1.0, 1e-9);
}

}  // namespace
}  // namespace kbqa::taxonomy
