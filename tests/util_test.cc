#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "obs/metrics.h"
#include "util/distributions.h"
#include "util/memory_budget.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace kbqa {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError,
        StatusCode::kCorruption}) {
    EXPECT_STRNE(StatusCodeToString(code), "");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThrough() {
  KBQA_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ---------- Strings ----------

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinRoundTrips) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, "-"), "x-y-z");
  EXPECT_EQ(JoinRange(pieces, 1, 3, " "), "y z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("HeLLo 42"), "hello 42");
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
  EXPECT_TRUE(Contains("the population of", "population"));
  EXPECT_FALSE(Contains("abc", "x"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("who is $e 's wife", "$e", "barack obama"),
            "who is barack obama 's wife");
  EXPECT_EQ(ReplaceAll("aaa", "a", "aa"), "aaaaaa");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(StringsTest, NumberParsing) {
  EXPECT_TRUE(IsNumber("390000"));
  EXPECT_FALSE(IsNumber("39a0"));
  EXPECT_FALSE(IsNumber(""));
  EXPECT_EQ(ParseNonNegativeInt("1961"), 1961);
  EXPECT_EQ(ParseNonNegativeInt("x"), -1);
  EXPECT_EQ(ParseNonNegativeInt("99999999999999999999"), -1);  // overflow
}

TEST(StringsTest, HashIsStableAndSpreads) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 12);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork(1);
  Rng a2(23);
  Rng child2 = a2.Fork(1);
  EXPECT_EQ(child.Next(), child2.Next());  // Deterministic fork.
  Rng other = a.Fork(2);
  EXPECT_NE(child.Next(), other.Next());
}

TEST(RngTest, ZipfFavorsHead) {
  Rng rng(29);
  int head = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) head += (rng.Zipf(100, 1.0) < 10);
  // Top-10 of a 100-item Zipf(1.0) carries well over half the mass.
  EXPECT_GT(head, n / 2);
}

/// Pearson chi-square statistic of observed counts against expected
/// (same total mass, every expected bin positive).
double ChiSquare(const std::vector<uint64_t>& observed,
                 const std::vector<double>& expected) {
  double chi2 = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double diff = static_cast<double>(observed[i]) - expected[i];
    chi2 += diff * diff / expected[i];
  }
  return chi2;
}

TEST(RngTest, ZipfianGeneratorMatchesZipfPmfChiSquare) {
  // The YCSB/Gray closed-form generator against the exact Zipf pmf
  // p(i) = i^-theta / H_{n,theta}, at the generator's design scale: the
  // inverse transform is an approximation whose per-rank bias is
  // negligible for large n (measured chi2 tracks df at n=1000) but shows
  // at toy sizes (n=20 rejects with enough draws). 1000 bins, 50K draws,
  // fixed seed; the df=999 critical value at p=0.001 is ~1143. A uniform
  // sampler scores ~200000 here, a wrong eta/alpha in the tens of
  // thousands.
  const size_t n = 1000;
  const double theta = 0.99;
  Rng rng(101);
  ZipfianGenerator zipf(n, theta);
  const size_t draws = 50000;
  std::vector<uint64_t> observed(n, 0);
  for (size_t i = 0; i < draws; ++i) {
    const size_t rank = zipf.Sample(rng);
    ASSERT_LT(rank, n);
    ++observed[rank];
  }
  const double zeta = ZipfianGenerator::Zeta(n, theta);
  std::vector<double> expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<double>(draws) /
                  (std::pow(static_cast<double>(i + 1), theta) * zeta);
  }
  EXPECT_LT(ChiSquare(observed, expected), 1143.0);
  // Rank 0 carries the most mass and the head dominates the tail.
  EXPECT_GT(observed[0], observed[n - 1] * 4);
}

TEST(RngTest, ZipfianGeneratorIsDeterministic) {
  ZipfianGenerator zipf(1000, 0.99);
  Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(zipf.Sample(a), zipf.Sample(b));
  }
}

TEST(RngTest, NURandMatchesEnumeratedPmfChiSquare) {
  // NURand(a=15, x=0, y=19, c=7) has an exactly enumerable pmf: 16 x 20
  // equiprobable (lead, body) pairs folded through ((lead|body)+c)%20.
  const uint64_t a = 15, x = 0, y = 19, c = 7;
  const size_t range = y - x + 1;
  std::vector<double> pmf(range, 0);
  for (uint64_t lead = 0; lead <= a; ++lead) {
    for (uint64_t body = x; body <= y; ++body) {
      pmf[(((lead | body) + c) % range) + x] +=
          1.0 / (static_cast<double>(a + 1) * static_cast<double>(range));
    }
  }
  Rng rng(211);
  const size_t draws = 60000;
  std::vector<uint64_t> observed(range, 0);
  for (size_t i = 0; i < draws; ++i) {
    const uint64_t v = NURand(rng, a, x, y, c);
    ASSERT_GE(v, x);
    ASSERT_LE(v, y);
    ++observed[v - x];
  }
  std::vector<double> expected(range);
  for (size_t i = 0; i < range; ++i) {
    expected[i] = pmf[i] * static_cast<double>(draws);
    ASSERT_GT(expected[i], 0.0);
  }
  // df = 19, critical value at p=0.001 is 43.8.
  EXPECT_LT(ChiSquare(observed, expected), 55.0);
}

TEST(RngTest, NURandStaysInRangeWithOffset) {
  Rng rng(307);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = NURand(rng, 255, 100, 1099, 42);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 1099u);
  }
}

// ---------- Distributions ----------

TEST(DistributionsTest, ZipfSamplerMatchesHeadMass) {
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (zipf.Sample(rng) == 0);
  // P(rank 0) = 1/H(1000) ~ 0.1336.
  EXPECT_NEAR(static_cast<double>(head) / n, 0.1336, 0.02);
}

TEST(DistributionsTest, DiscreteSamplerRespectsZeros) {
  Rng rng(37);
  DiscreteSampler sampler({0.0, 2.0, 0.0, 6.0});
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.75, 0.02);
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, RendersAlignedRows) {
  TablePrinter table("Table X: demo");
  table.SetHeader({"system", "P", "R"});
  table.AddRow({"KBQA", TablePrinter::Num(0.925, 2), TablePrinter::Int(42)});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Table X: demo"), std::string::npos);
  EXPECT_NE(out.find("KBQA"), std::string::npos);
  EXPECT_NE(out.find("0.93"), std::string::npos);  // rounded
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::Num(0.5, 2), "0.50");
  EXPECT_EQ(TablePrinter::Num(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(TablePrinter::Int(-7), "-7");
}

// ---------- MemoryBudget ----------

TEST(MemoryBudgetTest, SplitsByWeight) {
  util::MemoryBudget budget(
      400, {{"value_cache", 1.0}, {"answer_cache", 1.0}, {"ekb_blocks", 2.0}});
  EXPECT_EQ(budget.total_bytes(), 400u);
  EXPECT_EQ(budget.BudgetFor("value_cache"), 100u);
  EXPECT_EQ(budget.BudgetFor("answer_cache"), 100u);
  EXPECT_EQ(budget.BudgetFor("ekb_blocks"), 200u);
  EXPECT_EQ(budget.BudgetFor("nonexistent"), 0u);
}

TEST(MemoryBudgetTest, ZeroTotalMeansUnbudgeted) {
  util::MemoryBudget budget(0, {{"value_cache", 1.0}, {"ekb_blocks", 2.0}});
  EXPECT_EQ(budget.BudgetFor("value_cache"), 0u);
  EXPECT_EQ(budget.BudgetFor("ekb_blocks"), 0u);
}

TEST(MemoryBudgetTest, NonPositiveWeightGetsNothing) {
  util::MemoryBudget budget(300, {{"a", 2.0}, {"b", 0.0}, {"c", -1.0}});
  EXPECT_EQ(budget.BudgetFor("a"), 300u);
  EXPECT_EQ(budget.BudgetFor("b"), 0u);
  EXPECT_EQ(budget.BudgetFor("c"), 0u);
}

TEST(MemoryBudgetTest, PublishesGauges) {
  util::MemoryBudget budget(1000, {{"value_cache", 1.0}, {"ekb_blocks", 4.0}});
  budget.PublishBudgets();
  util::MemoryBudget::Publish("ekb_blocks", 512);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const auto* total = snap.gauge("mem.budget.bytes");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value, 1000.0);
  const auto* slice = snap.gauge("mem.ekb_blocks.budget_bytes");
  ASSERT_NE(slice, nullptr);
  EXPECT_EQ(slice->value, 800.0);
  const auto* used = snap.gauge("mem.ekb_blocks.bytes");
  ASSERT_NE(used, nullptr);
  EXPECT_EQ(used->value, 512.0);
}

}  // namespace
}  // namespace kbqa
